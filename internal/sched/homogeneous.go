package sched

import (
	"sort"

	"prunesim/internal/task"
)

// FCFSRR is First-Come-First-Served Round-Robin for homogeneous systems:
// tasks are taken in arrival order and placed on machines in cyclic order,
// skipping machines with no free queue slot. The cursor persists across
// mapping events.
type FCFSRR struct {
	next int
}

// NewFCFSRR returns a fresh FCFS-RR heuristic.
func NewFCFSRR() *FCFSRR { return &FCFSRR{} }

// Name implements Batch.
func (*FCFSRR) Name() string { return "FCFS-RR" }

// Map implements Batch.
func (f *FCFSRR) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	v := newVirtualState(ctx)
	defer v.release()
	queue := v.tasks(unmapped)
	sortTasksByArrival(queue)
	n := len(ctx.Machines)
	out := ctx.AssignBuf[:0]
	for _, t := range queue {
		if v.total <= 0 {
			break
		}
		// Find the next machine in cyclic order with a free slot.
		assigned := false
		for probe := 0; probe < n; probe++ {
			j := (f.next + probe) % n
			if v.free[j] > 0 {
				out = append(out, Assignment{Task: t, Machine: j})
				v.assign(ctx, t, j)
				f.next = (j + 1) % n
				assigned = true
				break
			}
		}
		if !assigned {
			break
		}
	}
	ctx.AssignBuf = out
	return out
}

// EDF is Earliest Deadline First: the arrival queue is sorted by deadline,
// and each head task goes to the machine with the minimum expected
// completion time. Functionally the homogeneous analogue of MSD.
type EDF struct{}

// NewEDF returns the EDF heuristic.
func NewEDF() *EDF { return &EDF{} }

// Name implements Batch.
func (*EDF) Name() string { return "EDF" }

// Map implements Batch.
func (*EDF) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	return assignSorted(ctx, unmapped, func(a, b *task.Task) bool { return a.Deadline < b.Deadline })
}

// SJF is Shortest Job First: the arrival queue is sorted by expected
// execution time, and each head task goes to the machine with the minimum
// expected completion time. Functionally the homogeneous analogue of MM.
type SJF struct{}

// NewSJF returns the SJF heuristic.
func NewSJF() *SJF { return &SJF{} }

// Name implements Batch.
func (*SJF) Name() string { return "SJF" }

// Map implements Batch.
func (*SJF) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	// On a homogeneous system the expected execution time is
	// machine-independent; use machine 0's column.
	return assignSorted(ctx, unmapped, func(a, b *task.Task) bool {
		return ctx.MeanExec(a.Type, 0) < ctx.MeanExec(b.Type, 0)
	})
}

// assignSorted maps tasks in the order induced by less, each to the machine
// with the minimum expected completion time, until slots run out.
func assignSorted(ctx *Context, unmapped []*task.Task, less func(a, b *task.Task) bool) []Assignment {
	v := newVirtualState(ctx)
	defer v.release()
	queue := v.tasks(unmapped)
	sort.SliceStable(queue, func(i, j int) bool { return less(queue[i], queue[j]) })
	out := ctx.AssignBuf[:0]
	for _, t := range queue {
		if v.total <= 0 {
			break
		}
		j, _ := v.bestMachine(ctx, t)
		if j < 0 {
			break
		}
		out = append(out, Assignment{Task: t, Machine: j})
		v.assign(ctx, t, j)
	}
	ctx.AssignBuf = out
	return out
}
