package sched

import (
	"sort"

	"prunesim/internal/task"
)

// FCFSRR is First-Come-First-Served Round-Robin for homogeneous systems:
// tasks are taken in arrival order and placed on machines in cyclic order,
// skipping machines with no free queue slot. The cursor persists across
// mapping events.
type FCFSRR struct {
	next int
}

// NewFCFSRR returns a fresh FCFS-RR heuristic.
func NewFCFSRR() *FCFSRR { return &FCFSRR{} }

// Name implements Batch.
func (*FCFSRR) Name() string { return "FCFS-RR" }

// Map implements Batch.
func (f *FCFSRR) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	v := newVirtualState(ctx)
	queue := append([]*task.Task(nil), unmapped...)
	sortTasksByArrival(queue)
	n := len(ctx.Machines)
	var out []Assignment
	for _, t := range queue {
		if v.total <= 0 {
			break
		}
		// Find the next machine in cyclic order with a free slot.
		assigned := false
		for probe := 0; probe < n; probe++ {
			j := (f.next + probe) % n
			if v.free[j] > 0 {
				out = append(out, Assignment{Task: t, Machine: j})
				v.assign(ctx, t, j)
				f.next = (j + 1) % n
				assigned = true
				break
			}
		}
		if !assigned {
			break
		}
	}
	return out
}

// EDF is Earliest Deadline First: the arrival queue is sorted by deadline,
// and each head task goes to the machine with the minimum expected
// completion time. Functionally the homogeneous analogue of MSD.
type EDF struct{}

// NewEDF returns the EDF heuristic.
func NewEDF() *EDF { return &EDF{} }

// Name implements Batch.
func (*EDF) Name() string { return "EDF" }

// Map implements Batch.
func (*EDF) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	queue := append([]*task.Task(nil), unmapped...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Deadline < queue[j].Deadline })
	return assignInOrder(ctx, queue)
}

// SJF is Shortest Job First: the arrival queue is sorted by expected
// execution time, and each head task goes to the machine with the minimum
// expected completion time. Functionally the homogeneous analogue of MM.
type SJF struct{}

// NewSJF returns the SJF heuristic.
func NewSJF() *SJF { return &SJF{} }

// Name implements Batch.
func (*SJF) Name() string { return "SJF" }

// Map implements Batch.
func (*SJF) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	queue := append([]*task.Task(nil), unmapped...)
	// On a homogeneous system the expected execution time is
	// machine-independent; use machine 0's column.
	sort.SliceStable(queue, func(i, j int) bool {
		return ctx.MeanExec(queue[i].Type, 0) < ctx.MeanExec(queue[j].Type, 0)
	})
	return assignInOrder(ctx, queue)
}

// assignInOrder maps tasks in the given order, each to the machine with the
// minimum expected completion time, until slots run out.
func assignInOrder(ctx *Context, queue []*task.Task) []Assignment {
	v := newVirtualState(ctx)
	var out []Assignment
	for _, t := range queue {
		if v.total <= 0 {
			break
		}
		j, _ := v.bestMachine(ctx, t)
		if j < 0 {
			break
		}
		out = append(out, Assignment{Task: t, Machine: j})
		v.assign(ctx, t, j)
	}
	return out
}
