package sched

import (
	"testing"

	"prunesim/internal/task"
)

func TestOLBPicksEarliestReady(t *testing.T) {
	ctx := testFixture([][]float64{{5, 1}}, 0)
	// Load machine 1 (the "fast" one): OLB ignores execution time and picks
	// the idle machine 0.
	ctx.Machines[1].Enqueue(task.New(9, 0, 0, 100), 0)
	if got := NewOLB().Pick(ctx, task.New(0, 0, 0, 100)); got != 0 {
		t.Fatalf("OLB picked %d, want idle machine 0", got)
	}
}

func TestOLBIgnoresAffinity(t *testing.T) {
	// Machine 1 is 10x faster for this type, but both are idle: OLB picks
	// the first machine with minimal ready time (machine 0).
	ctx := testFixture([][]float64{{10, 1}}, 0)
	if got := NewOLB().Pick(ctx, task.New(0, 0, 0, 100)); got != 0 {
		t.Fatalf("OLB picked %d, want 0 (ready-time tie, first wins)", got)
	}
}

func TestMaxMinServesLongTaskFirst(t *testing.T) {
	// Task 0 is long (exec 8), task 1 short (exec 1); both prefer machine 0.
	ctx := testFixture([][]float64{{8, 20}, {1, 20}}, 1)
	long := task.New(0, 0, 0, 100)
	short := task.New(1, 1, 0, 100)
	out := NewMaxMin().Map(ctx, []*task.Task{short, long})
	if len(out) != 2 {
		t.Fatalf("assignments %d, want 2", len(out))
	}
	if out[0].Task != long || out[0].Machine != 0 {
		t.Fatalf("Max-Min first pick = task %d on %d, want long task on 0", out[0].Task.ID, out[0].Machine)
	}
	// The short task is left with machine 1.
	if out[1].Task != short || out[1].Machine != 1 {
		t.Fatalf("Max-Min second pick wrong: %+v", out[1])
	}
}

func TestMaxMinRespectsSlots(t *testing.T) {
	ctx := testFixture([][]float64{{1, 1}}, 2)
	var tasks []*task.Task
	for i := 0; i < 9; i++ {
		tasks = append(tasks, task.New(i, 0, 0, 100))
	}
	out := NewMaxMin().Map(ctx, tasks)
	if len(out) != 4 {
		t.Fatalf("assignments %d, want 4", len(out))
	}
}

func TestSufferagePrefersHighSufferage(t *testing.T) {
	// Both tasks prefer machine 0. Task 0's second-best is barely worse
	// (sufferage 1); task 1's alternative is terrible (sufferage 50).
	// Sufferage must give machine 0 to task 1.
	ctx := testFixture([][]float64{{2, 3}, {2, 52}}, 1)
	lowSuff := task.New(0, 0, 0, 100)
	highSuff := task.New(1, 1, 0, 100)
	out := NewSufferage().Map(ctx, []*task.Task{lowSuff, highSuff})
	if len(out) == 0 || out[0].Task != highSuff || out[0].Machine != 0 {
		t.Fatalf("Sufferage first pick = %+v, want high-sufferage task on machine 0", out[0])
	}
}

func TestSufferageSingleMachine(t *testing.T) {
	// With one machine, sufferage is 0 for everyone; the heuristic must
	// still assign (ties resolved by completion).
	ctx := testFixture([][]float64{{2}, {1}}, 2)
	a := task.New(0, 0, 0, 100)
	b := task.New(1, 1, 0, 100)
	out := NewSufferage().Map(ctx, []*task.Task{a, b})
	if len(out) != 2 {
		t.Fatalf("assignments %d, want 2", len(out))
	}
}

func TestExtraHeuristicsInRegistry(t *testing.T) {
	for _, c := range []struct {
		name string
		imm  bool
	}{
		{"OLB", true}, {"MaxMin", false}, {"Sufferage", false},
	} {
		h, imm, err := ByName(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if imm != c.imm {
			t.Errorf("%s: imm = %v, want %v", c.name, imm, c.imm)
		}
		switch v := h.(type) {
		case Immediate:
			if v.Name() != c.name {
				t.Errorf("%s: Name() = %q", c.name, v.Name())
			}
		case Batch:
			if v.Name() != c.name {
				t.Errorf("%s: Name() = %q", c.name, v.Name())
			}
		}
	}
}

func TestExtraBatchStopAtZeroSlots(t *testing.T) {
	for _, h := range []Batch{NewMaxMin(), NewSufferage()} {
		ctx := testFixture([][]float64{{1, 1}}, 1)
		ctx.Machines[0].Enqueue(task.New(90, 0, 0, 100), 0)
		ctx.Machines[1].Enqueue(task.New(91, 0, 0, 100), 0)
		if out := h.Map(ctx, []*task.Task{task.New(0, 0, 0, 100)}); len(out) != 0 {
			t.Errorf("%s assigned with no free slots", h.Name())
		}
	}
}
