package sched

import (
	"math"

	"prunesim/internal/task"
)

// MM is MinCompletion-MinCompletion (Min-Min), the classic two-phase
// batch-mode heuristic. Phase one finds, for every unmapped task, the
// machine offering the minimum expected completion time; phase two commits
// the task-machine pair with the globally minimum completion time. The
// process repeats on the updated virtual queues until slots or tasks run
// out.
type MM struct{}

// NewMM returns the Min-Min heuristic.
func NewMM() *MM { return &MM{} }

// Name implements Batch.
func (*MM) Name() string { return "MM" }

// Map implements Batch.
func (*MM) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	v := newVirtualState(ctx)
	defer v.release()
	remaining := v.tasks(unmapped)
	out := ctx.AssignBuf[:0]
	for v.total > 0 && len(remaining) > 0 {
		bestI, bestJ, bestC := -1, -1, math.Inf(1)
		for i, t := range remaining {
			j, c := v.bestMachine(ctx, t)
			if j >= 0 && c < bestC {
				bestI, bestJ, bestC = i, j, c
			}
		}
		if bestI < 0 {
			break
		}
		t := remaining[bestI]
		out = append(out, Assignment{Task: t, Machine: bestJ})
		v.assign(ctx, t, bestJ)
		remaining = append(remaining[:bestI], remaining[bestI+1:]...)
	}
	ctx.AssignBuf = out
	return out
}

// MSD is MinCompletion-SoonestDeadline. Phase one is identical to MM; phase
// two selects, for each machine, the candidate task with the soonest
// deadline (ties broken by minimum expected completion time).
type MSD struct{}

// NewMSD returns the MSD heuristic.
func NewMSD() *MSD { return &MSD{} }

// Name implements Batch.
func (*MSD) Name() string { return "MSD" }

// Map implements Batch.
func (*MSD) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	return mapPerMachineRounds(ctx, unmapped, func(t *task.Task, completion float64) (primary, secondary float64) {
		return t.Deadline, completion // minimize deadline, tie-break on completion
	})
}

// MMU is MinCompletion-MaxUrgency. Phase one is identical to MM; phase two
// selects, per machine, the candidate with maximum urgency
//
//	U = 1 / (deadline - E[completion])            (Eq. 3)
//
// Urgency grows without bound as the expected completion time approaches the
// deadline from below; a task whose expected completion already exceeds its
// deadline gets negative urgency and is naturally deprioritized (it is
// expected to fail regardless).
type MMU struct{}

// NewMMU returns the MMU heuristic.
func NewMMU() *MMU { return &MMU{} }

// Name implements Batch.
func (*MMU) Name() string { return "MMU" }

// Map implements Batch.
func (*MMU) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	return mapPerMachineRounds(ctx, unmapped, func(t *task.Task, completion float64) (primary, secondary float64) {
		diff := t.Deadline - completion
		var urgency float64
		if diff == 0 {
			urgency = math.Inf(1)
		} else {
			urgency = 1 / diff
		}
		// mapPerMachineRounds minimizes, so negate urgency to maximize it.
		return -urgency, completion
	})
}

// mapPerMachineRounds implements the shared two-phase structure of MSD and
// MMU: each round, every unmapped task nominates its minimum-completion
// machine; each machine with free slots picks the nominee minimizing
// key(primary, secondary); the round's picks are committed and the process
// repeats until no assignment can be made.
func mapPerMachineRounds(ctx *Context, unmapped []*task.Task,
	key func(t *task.Task, completion float64) (primary, secondary float64)) []Assignment {

	v := newVirtualState(ctx)
	defer v.release()
	remaining := v.tasks(unmapped)
	v.roundBuffers(len(ctx.Machines), len(remaining))
	out := ctx.AssignBuf[:0]
	for v.total > 0 && len(remaining) > 0 {
		v.round++
		round := v.round
		// Phase 1: nominate the min-completion machine per task. A task
		// nominates exactly one machine, so every machine ends up with at
		// most one committed nominee per round.
		for j := range v.picks {
			v.picks[j].taskIdx = -1
		}
		nominated := false
		for i, t := range remaining {
			j, c := v.bestMachine(ctx, t)
			if j < 0 {
				continue
			}
			p1, p2 := key(t, c)
			cur := &v.picks[j]
			if cur.taskIdx < 0 || p1 < cur.primary || (p1 == cur.primary && p2 < cur.secondary) {
				cur.taskIdx, cur.primary, cur.secondary = i, p1, p2
			}
			nominated = true
		}
		if !nominated {
			break
		}
		// Phase 2: commit one pick per machine, in machine order for
		// determinism. Committed candidate indices are stamped with the
		// round number; stale stamps from earlier rounds never match.
		for j := range v.picks {
			if i := v.picks[j].taskIdx; i >= 0 {
				v.chosenStamp[i] = round
				v.chosenMach[i] = int32(j)
			}
		}
		kept := remaining[:0]
		for i, t := range remaining {
			if v.chosenStamp[i] == round {
				if j := int(v.chosenMach[i]); v.free[j] > 0 {
					out = append(out, Assignment{Task: t, Machine: j})
					v.assign(ctx, t, j)
					continue
				}
			}
			kept = append(kept, t)
		}
		if len(kept) == len(remaining) {
			break
		}
		remaining = kept
	}
	ctx.AssignBuf = out
	return out
}
