package sched

import (
	"math"

	"prunesim/internal/task"
)

// DefaultKPBPercent is the K of K-Percent-Best used when none is given:
// with the paper's eight machines it keeps the best 3 (ceil(8 * 0.30)).
const DefaultKPBPercent = 30.0

// RR assigns arriving tasks to machines in cyclic order, ignoring execution
// and completion times entirely. It is the weakest immediate-mode baseline;
// the paper notes it is the one heuristic probabilistic dropping can hurt,
// because RR keeps mapping low-chance tasks that dropping then removes.
type RR struct {
	next int
}

// NewRR returns a fresh round-robin heuristic with its cursor at machine 0.
func NewRR() *RR { return &RR{} }

// Name implements Immediate.
func (*RR) Name() string { return "RR" }

// Pick implements Immediate. Down machines are probed past without losing
// the cyclic fairness: the cursor advances exactly one position per mapped
// task, so with a static machine set the walk is identical to the classic
// modulo increment. Returns -1 when every machine is down.
func (r *RR) Pick(ctx *Context, _ *task.Task) int {
	n := len(ctx.Machines)
	for probe := 0; probe < n; probe++ {
		j := (r.next + probe) % n
		if ctx.Usable(j) {
			r.next = (j + 1) % n
			return j
		}
	}
	return -1
}

// MET maps each task to the machine with the Minimum Expected execution Time
// for its type, ignoring current load. On an inconsistently heterogeneous
// system this concentrates load on high-affinity machines.
type MET struct{}

// NewMET returns the MET heuristic.
func NewMET() *MET { return &MET{} }

// Name implements Immediate.
func (*MET) Name() string { return "MET" }

// Pick implements Immediate.
func (*MET) Pick(ctx *Context, t *task.Task) int {
	best, bestExec := -1, math.Inf(1)
	for j := range ctx.Machines {
		if !ctx.Usable(j) {
			continue
		}
		if e := ctx.MeanExec(t.Type, j); e < bestExec {
			best, bestExec = j, e
		}
	}
	return best
}

// MCT maps each task to the machine with the Minimum expected Completion
// Time: the machine's expected ready time plus the task's expected execution
// time there.
type MCT struct{}

// NewMCT returns the MCT heuristic.
func NewMCT() *MCT { return &MCT{} }

// Name implements Immediate.
func (*MCT) Name() string { return "MCT" }

// Pick implements Immediate.
func (*MCT) Pick(ctx *Context, t *task.Task) int {
	best, bestC := -1, math.Inf(1)
	for j, m := range ctx.Machines {
		if !ctx.Usable(j) {
			continue
		}
		if c := m.ExpectedReady(ctx.Now) + ctx.MeanExec(t.Type, j); c < bestC {
			best, bestC = j, c
		}
	}
	return best
}

// KPB (K-Percent Best) blends MET and MCT: it applies the MCT rule but only
// among the K percent of machines with the lowest expected execution time
// for the arriving task's type.
type KPB struct {
	percent float64
	order   []int // reusable machine-ranking buffer (one Pick at a time)
}

// NewKPB returns a KPB heuristic keeping the given percentage of machines
// (0 < percent <= 100). It panics on an out-of-range percentage.
func NewKPB(percent float64) *KPB {
	if percent <= 0 || percent > 100 {
		panic("sched: KPB percent must be in (0, 100]")
	}
	return &KPB{percent: percent}
}

// Name implements Immediate.
func (*KPB) Name() string { return "KPB" }

// Pick implements Immediate. K percent is taken of the usable machines, so
// the heuristic keeps its paper semantics while a failed machine is down
// (and is unchanged when all machines are up).
func (k *KPB) Pick(ctx *Context, t *task.Task) int {
	if cap(k.order) < len(ctx.Machines) {
		k.order = make([]int, len(ctx.Machines))
	}
	// Rank usable machines by expected execution time for this task type.
	order := k.order[:0]
	for j := range ctx.Machines {
		if ctx.Usable(j) {
			order = append(order, j)
		}
	}
	n := len(order)
	if n == 0 {
		return -1
	}
	keep := int(math.Ceil(k.percent / 100 * float64(n)))
	if keep < 1 {
		keep = 1
	}
	if keep > n {
		keep = n
	}
	for i := 1; i < n; i++ {
		for p := i; p > 0 && ctx.MeanExec(t.Type, order[p]) < ctx.MeanExec(t.Type, order[p-1]); p-- {
			order[p], order[p-1] = order[p-1], order[p]
		}
	}
	best, bestC := -1, math.Inf(1)
	for _, j := range order[:keep] {
		if c := ctx.Machines[j].ExpectedReady(ctx.Now) + ctx.MeanExec(t.Type, j); c < bestC {
			best, bestC = j, c
		}
	}
	return best
}
