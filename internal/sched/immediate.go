package sched

import (
	"math"

	"prunesim/internal/task"
)

// DefaultKPBPercent is the K of K-Percent-Best used when none is given:
// with the paper's eight machines it keeps the best 3 (ceil(8 * 0.30)).
const DefaultKPBPercent = 30.0

// RR assigns arriving tasks to machines in cyclic order, ignoring execution
// and completion times entirely. It is the weakest immediate-mode baseline;
// the paper notes it is the one heuristic probabilistic dropping can hurt,
// because RR keeps mapping low-chance tasks that dropping then removes.
type RR struct {
	next int
}

// NewRR returns a fresh round-robin heuristic with its cursor at machine 0.
func NewRR() *RR { return &RR{} }

// Name implements Immediate.
func (*RR) Name() string { return "RR" }

// Pick implements Immediate.
func (r *RR) Pick(ctx *Context, _ *task.Task) int {
	j := r.next % len(ctx.Machines)
	r.next = (r.next + 1) % len(ctx.Machines)
	return j
}

// MET maps each task to the machine with the Minimum Expected execution Time
// for its type, ignoring current load. On an inconsistently heterogeneous
// system this concentrates load on high-affinity machines.
type MET struct{}

// NewMET returns the MET heuristic.
func NewMET() *MET { return &MET{} }

// Name implements Immediate.
func (*MET) Name() string { return "MET" }

// Pick implements Immediate.
func (*MET) Pick(ctx *Context, t *task.Task) int {
	best, bestExec := -1, math.Inf(1)
	for j := range ctx.Machines {
		if e := ctx.MeanExec(t.Type, j); e < bestExec {
			best, bestExec = j, e
		}
	}
	return best
}

// MCT maps each task to the machine with the Minimum expected Completion
// Time: the machine's expected ready time plus the task's expected execution
// time there.
type MCT struct{}

// NewMCT returns the MCT heuristic.
func NewMCT() *MCT { return &MCT{} }

// Name implements Immediate.
func (*MCT) Name() string { return "MCT" }

// Pick implements Immediate.
func (*MCT) Pick(ctx *Context, t *task.Task) int {
	best, bestC := -1, math.Inf(1)
	for j, m := range ctx.Machines {
		if c := m.ExpectedReady(ctx.Now) + ctx.MeanExec(t.Type, j); c < bestC {
			best, bestC = j, c
		}
	}
	return best
}

// KPB (K-Percent Best) blends MET and MCT: it applies the MCT rule but only
// among the K percent of machines with the lowest expected execution time
// for the arriving task's type.
type KPB struct {
	percent float64
	order   []int // reusable machine-ranking buffer (one Pick at a time)
}

// NewKPB returns a KPB heuristic keeping the given percentage of machines
// (0 < percent <= 100). It panics on an out-of-range percentage.
func NewKPB(percent float64) *KPB {
	if percent <= 0 || percent > 100 {
		panic("sched: KPB percent must be in (0, 100]")
	}
	return &KPB{percent: percent}
}

// Name implements Immediate.
func (*KPB) Name() string { return "KPB" }

// Pick implements Immediate.
func (k *KPB) Pick(ctx *Context, t *task.Task) int {
	n := len(ctx.Machines)
	keep := int(math.Ceil(k.percent / 100 * float64(n)))
	if keep < 1 {
		keep = 1
	}
	if keep > n {
		keep = n
	}
	// Rank machines by expected execution time for this task type.
	if cap(k.order) < n {
		k.order = make([]int, n)
	}
	order := k.order[:n]
	for j := range order {
		order[j] = j
	}
	for i := 1; i < n; i++ {
		for p := i; p > 0 && ctx.MeanExec(t.Type, order[p]) < ctx.MeanExec(t.Type, order[p-1]); p-- {
			order[p], order[p-1] = order[p-1], order[p]
		}
	}
	best, bestC := -1, math.Inf(1)
	for _, j := range order[:keep] {
		if c := ctx.Machines[j].ExpectedReady(ctx.Now) + ctx.MeanExec(t.Type, j); c < bestC {
			best, bestC = j, c
		}
	}
	return best
}
