// Package sched implements the ten mapping heuristics the paper evaluates
// (Figure 3): the immediate-mode heuristics RR, MET, MCT and KPB, the
// batch-mode two-phase heuristics MM (MinCompletion-MinCompletion), MSD
// (MinCompletion-SoonestDeadline) and MMU (MinCompletion-MaxUrgency) for
// heterogeneous systems, and FCFS-RR, EDF and SJF for homogeneous systems.
//
// Heuristics are deliberately unaware of the pruning mechanism: the paper's
// central claim is that the pruner plugs into an existing resource
// allocation system without altering its mapping heuristic. The simulator
// composes the two.
package sched

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"prunesim/internal/machine"
	"prunesim/internal/task"
)

// Context is the read-only view of the resource-allocation state a heuristic
// maps against during one mapping event.
type Context struct {
	// Now is the current simulation time.
	Now float64
	// Machines are the worker nodes (index == machine ID).
	Machines []*machine.Machine
	// MeanExec returns the expected execution time of a task type on a
	// machine (by machine ID), read from the PET matrix.
	MeanExec func(taskType, machineID int) float64
	// Slots caps the number of pending (not yet running) tasks per machine
	// queue in batch mode. Zero or negative means unbounded (immediate mode).
	Slots int

	// AssignBuf is the reusable backing array batch heuristics build their
	// returned assignments in; Map calls grow it as needed and store it back,
	// so a long simulation reaches a steady state where mapping events stop
	// allocating. It makes one Map result only valid until the next Map call
	// with the same Context (see Batch).
	AssignBuf []Assignment
}

// Usable reports whether machine j can accept work: a machine taken down by
// a platform failure event is invisible to every heuristic until it
// rejoins. With a static machine set (no platform events) this is always
// true.
func (c *Context) Usable(j int) bool { return !c.Machines[j].Down() }

// freeSlots returns how many more tasks machine j can accept. A down
// machine has none.
func (c *Context) freeSlots(j int) int {
	if c.Machines[j].Down() {
		return 0
	}
	if c.Slots <= 0 {
		return math.MaxInt32
	}
	return c.Slots - c.Machines[j].PendingCount()
}

// Assignment is one task-to-machine mapping decision, in the order the
// heuristic made it.
type Assignment struct {
	Task    *task.Task
	Machine int
}

// Batch is a batch-mode mapping heuristic: given the unmapped tasks of the
// arrival queue, produce assignments until machine queue slots are exhausted
// or no task remains. Implementations must not mutate tasks or machines;
// they reason over virtual state only.
//
// The returned slice is backed by the Context's reusable AssignBuf: it is
// valid only until the next Map call with the same Context, so callers must
// consume (or copy) it first.
type Batch interface {
	Name() string
	Map(ctx *Context, unmapped []*task.Task) []Assignment
}

// Immediate is an immediate-mode heuristic: pick a machine for one arriving
// task. Implementations may keep internal state (e.g. a round-robin cursor),
// so construct a fresh instance per simulation.
type Immediate interface {
	Name() string
	Pick(ctx *Context, t *task.Task) int
}

// virtualState tracks expected machine readiness while a batch heuristic
// builds its provisional mapping. Instances are pooled and carry reusable
// buffers, so a mapping event in steady state allocates nothing but its
// returned assignments: heuristics acquire one with newVirtualState and
// release it when the Map call finishes.
type virtualState struct {
	ready []float64
	free  []int
	total int

	// remaining is the reusable working copy of the unmapped tasks (see
	// tasks). picks, chosenMach and chosenStamp are the per-round nominee
	// table and committed-task markers of mapPerMachineRounds; round is the
	// monotonically increasing stamp that makes stale markers harmless
	// across rounds, Map calls and pool reuses.
	remaining   []*task.Task
	picks       []pick
	chosenMach  []int32
	chosenStamp []int64
	round       int64
}

// pick is one machine's best nominee within a mapping round.
type pick struct {
	taskIdx            int
	primary, secondary float64
}

// vsPool recycles virtualState buffers across mapping events and trials.
var vsPool = sync.Pool{New: func() any { return new(virtualState) }}

func newVirtualState(ctx *Context) *virtualState {
	v := vsPool.Get().(*virtualState)
	n := len(ctx.Machines)
	if cap(v.ready) < n {
		v.ready = make([]float64, n)
		v.free = make([]int, n)
	}
	v.ready = v.ready[:n]
	v.free = v.free[:n]
	v.total = 0
	for j, m := range ctx.Machines {
		if m.Down() {
			// No slots and an unreachable ready time: every batch heuristic
			// routes machine choice through free/ready, so this one branch
			// hides down machines from all of them.
			v.ready[j] = math.Inf(1)
			v.free[j] = 0
			continue
		}
		v.ready[j] = m.ExpectedReady(ctx.Now)
		f := ctx.freeSlots(j)
		if f < 0 {
			f = 0
		}
		v.free[j] = f
		v.total += f
	}
	return v
}

// release returns v to the pool. The caller must drop every reference into
// v's buffers first.
func (v *virtualState) release() {
	v.remaining = v.remaining[:0]
	vsPool.Put(v)
}

// tasks fills and returns v's reusable working copy of ts.
func (v *virtualState) tasks(ts []*task.Task) []*task.Task {
	if cap(v.remaining) < len(ts) {
		v.remaining = make([]*task.Task, 0, len(ts))
	}
	v.remaining = append(v.remaining[:0], ts...)
	return v.remaining
}

// roundBuffers sizes the mapPerMachineRounds working arrays.
func (v *virtualState) roundBuffers(nMachines, nTasks int) {
	if cap(v.picks) < nMachines {
		v.picks = make([]pick, nMachines)
	}
	v.picks = v.picks[:nMachines]
	if cap(v.chosenMach) < nTasks {
		v.chosenMach = make([]int32, nTasks)
		v.chosenStamp = make([]int64, nTasks)
	}
	v.chosenMach = v.chosenMach[:nTasks]
	v.chosenStamp = v.chosenStamp[:nTasks]
}

func (v *virtualState) assign(ctx *Context, t *task.Task, j int) {
	v.ready[j] += ctx.MeanExec(t.Type, j)
	v.free[j]--
	v.total--
}

// completion returns the expected completion time of task t if appended to
// machine j's virtual queue.
func (v *virtualState) completion(ctx *Context, t *task.Task, j int) float64 {
	return v.ready[j] + ctx.MeanExec(t.Type, j)
}

// bestMachine returns the machine with minimum expected completion time for
// t among machines with free virtual slots, or -1 if none.
func (v *virtualState) bestMachine(ctx *Context, t *task.Task) (j int, completion float64) {
	j, completion = -1, math.Inf(1)
	for m := range ctx.Machines {
		if v.free[m] <= 0 {
			continue
		}
		if c := v.completion(ctx, t, m); c < completion {
			j, completion = m, c
		}
	}
	return j, completion
}

// ByName constructs a heuristic by its paper name. Immediate-mode names
// return an Immediate; all others return a Batch. The second return reports
// whether the heuristic is immediate-mode.
func ByName(name string) (any, bool, error) {
	switch name {
	case "RR":
		return NewRR(), true, nil
	case "MET":
		return NewMET(), true, nil
	case "MCT":
		return NewMCT(), true, nil
	case "KPB":
		return NewKPB(DefaultKPBPercent), true, nil
	case "MM":
		return NewMM(), false, nil
	case "MSD":
		return NewMSD(), false, nil
	case "MMU":
		return NewMMU(), false, nil
	case "OLB":
		return NewOLB(), true, nil
	case "MaxMin":
		return NewMaxMin(), false, nil
	case "Sufferage":
		return NewSufferage(), false, nil
	case "FCFS-RR":
		return NewFCFSRR(), false, nil
	case "EDF":
		return NewEDF(), false, nil
	case "SJF":
		return NewSJF(), false, nil
	default:
		return nil, false, fmt.Errorf("sched: unknown heuristic %q", name)
	}
}

// Names lists all heuristic names accepted by ByName, grouped immediate
// first, then batch heterogeneous, then homogeneous. The first ten are the
// paper's heuristics; OLB, MaxMin and Sufferage are extra baselines from
// the same literature.
func Names() []string {
	return []string{
		"RR", "MET", "MCT", "KPB",
		"MM", "MSD", "MMU",
		"FCFS-RR", "EDF", "SJF",
		"OLB", "MaxMin", "Sufferage",
	}
}

// sortStable sorts assignments candidates deterministically.
func sortTasksByArrival(ts []*task.Task) {
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
}
