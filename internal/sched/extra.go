package sched

import (
	"math"

	"prunesim/internal/task"
)

// The heuristics in this file are not evaluated in the paper's figures but
// come from the same literature its Figure 3 draws on (Braun et al.'s
// eleven-heuristic comparison and Maheswaran et al.'s dynamic mapping
// study). They are included as additional baselines for the benchmark
// harness and for downstream users.

// OLB is Opportunistic Load Balancing: an immediate-mode heuristic that
// assigns each arriving task to the machine expected to become available
// soonest, ignoring execution times entirely. It keeps machines busy but is
// blind to task-machine affinity.
type OLB struct{}

// NewOLB returns the OLB heuristic.
func NewOLB() *OLB { return &OLB{} }

// Name implements Immediate.
func (*OLB) Name() string { return "OLB" }

// Pick implements Immediate.
func (*OLB) Pick(ctx *Context, _ *task.Task) int {
	best, bestReady := -1, math.Inf(1)
	for j, m := range ctx.Machines {
		if !ctx.Usable(j) {
			continue
		}
		if r := m.ExpectedReady(ctx.Now); r < bestReady {
			best, bestReady = j, r
		}
	}
	return best
}

// MaxMin is MinCompletion-MaxCompletion: phase one finds each task's
// minimum-completion machine, phase two commits the pair with the LARGEST
// such completion time. Long tasks are placed first, so they are not
// starved by swarms of short tasks — the classic complement of Min-Min.
type MaxMin struct{}

// NewMaxMin returns the Max-Min heuristic.
func NewMaxMin() *MaxMin { return &MaxMin{} }

// Name implements Batch.
func (*MaxMin) Name() string { return "MaxMin" }

// Map implements Batch.
func (*MaxMin) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	v := newVirtualState(ctx)
	defer v.release()
	remaining := v.tasks(unmapped)
	out := ctx.AssignBuf[:0]
	for v.total > 0 && len(remaining) > 0 {
		bestI, bestJ, bestC := -1, -1, math.Inf(-1)
		for i, t := range remaining {
			j, c := v.bestMachine(ctx, t)
			if j >= 0 && c > bestC {
				bestI, bestJ, bestC = i, j, c
			}
		}
		if bestI < 0 {
			break
		}
		t := remaining[bestI]
		out = append(out, Assignment{Task: t, Machine: bestJ})
		v.assign(ctx, t, bestJ)
		remaining = append(remaining[:bestI], remaining[bestI+1:]...)
	}
	ctx.AssignBuf = out
	return out
}

// Sufferage assigns, each round, the task that would "suffer" most if
// denied its best machine: sufferage = second-best completion minus best
// completion. Tasks contending for the same machine are resolved in favour
// of the highest sufferage.
type Sufferage struct{}

// NewSufferage returns the Sufferage heuristic.
func NewSufferage() *Sufferage { return &Sufferage{} }

// Name implements Batch.
func (*Sufferage) Name() string { return "Sufferage" }

// Map implements Batch.
func (*Sufferage) Map(ctx *Context, unmapped []*task.Task) []Assignment {
	return mapPerMachineRounds(ctx, unmapped, func(t *task.Task, completion float64) (primary, secondary float64) {
		// mapPerMachineRounds nominates each task on its best machine and
		// minimizes the primary key per machine; negate sufferage to pick
		// the maximum-sufferage contender.
		return -sufferageOf(ctx, t, completion), completion
	})
}

// sufferageOf computes second-best minus best completion for t given the
// *current real* machine states. The virtual bookkeeping inside the mapping
// rounds shifts completions slightly; using real state keeps the metric
// stable within one mapping event, matching the classic formulation that
// computes sufferage against the state at the start of the round.
func sufferageOf(ctx *Context, t *task.Task, best float64) float64 {
	second := math.Inf(1)
	for j, m := range ctx.Machines {
		if !ctx.Usable(j) {
			continue
		}
		c := m.ExpectedReady(ctx.Now) + ctx.MeanExec(t.Type, j)
		if c > best && c < second {
			second = c
		}
	}
	if math.IsInf(second, 1) {
		return 0
	}
	return second - best
}
