// Benchmarks that regenerate every figure of the paper's evaluation
// (DESIGN.md experiment index E1-E9 plus ablations A1-A3). Each figure
// benchmark executes its full configuration sweep at a reduced scale
// (Scale=0.1, 2 trials per point) so `go test -bench=.` stays tractable;
// `cmd/experiments` runs the paper-scale versions (Scale=1, 30 trials).
//
// The reported robustness means of the headline series are attached as
// custom benchmark metrics, so a bench run doubles as a smoke check of the
// figures' shapes.
package prunesim_test

import (
	"testing"

	"prunesim"
)

// benchOpt is the reduced-scale configuration used by figure benchmarks.
func benchOpt() prunesim.FigureOptions {
	return prunesim.FigureOptions{Trials: 2, Scale: 0.1, Seed: 0xbe7c, Parallelism: 4}
}

// runFigure executes one figure sweep per iteration and reports the mean
// robustness across rows as a metric.
func runFigure(b *testing.B, name string) {
	b.Helper()
	var fr *prunesim.FigureResult
	var err error
	for i := 0; i < b.N; i++ {
		fr, err = prunesim.RunFigure(name, benchOpt())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(fr.Rows) > 0 {
		var sum float64
		for _, r := range fr.Rows {
			sum += r.Robustness.Mean
		}
		b.ReportMetric(sum/float64(len(fr.Rows)), "mean_robustness_%")
	}
}

// BenchmarkFig2Convolution regenerates the paper's Figure-2 worked example:
// one PET x PCT convolution plus the chance-of-success read-off (E9).
func BenchmarkFig2Convolution(b *testing.B) {
	pet := prunesim.NewPMF(1, 1, []float64{0.75, 0.125, 0.125}, 0)
	pct := prunesim.NewPMF(4, 1, []float64{0.5, 0.33, 0.17}, 0)
	var chance float64
	for i := 0; i < b.N; i++ {
		chance = pet.Convolve(pct).ProbLE(7)
	}
	b.ReportMetric(100*chance, "chance_%")
}

// BenchmarkFig6SpikyWorkload generates the spiky arrival pattern (E1).
func BenchmarkFig6SpikyWorkload(b *testing.B) {
	matrix := prunesim.StandardPET()
	cfg := prunesim.DefaultWorkload(15000)
	var n int
	for i := 0; i < b.N; i++ {
		cfg.Trial = i
		tasks, err := prunesim.GenerateWorkload(matrix, cfg)
		if err != nil {
			b.Fatal(err)
		}
		n = len(tasks)
	}
	b.ReportMetric(float64(n), "tasks")
}

// BenchmarkFigureSweep is the CI bench-regression gate's end-to-end
// benchmark: one full RunFigure sweep (figure 7b — batch-mode heuristics
// against the three dropping policies) per iteration. It exercises the
// entire hot path — workload generation, mapping events, PMF convolution,
// PCT maintenance, pruning — and its ns/op trajectory across PRs is the
// repo's headline perf metric (see BENCH_baseline.json).
func BenchmarkFigureSweep(b *testing.B) { runFigure(b, "7b") }

// BenchmarkFig7aImmediateToggle sweeps immediate-mode heuristics against
// the three dropping policies (E2).
func BenchmarkFig7aImmediateToggle(b *testing.B) { runFigure(b, "7a") }

// BenchmarkFig7bBatchToggle sweeps batch-mode heuristics against the three
// dropping policies (E3).
func BenchmarkFig7bBatchToggle(b *testing.B) { runFigure(b, "7b") }

// BenchmarkFig8DeferThreshold sweeps the deferring threshold at 25K (E4).
func BenchmarkFig8DeferThreshold(b *testing.B) { runFigure(b, "8") }

// BenchmarkFig9aConstantBatch compares pruned vs unpruned batch heuristics
// under constant arrivals across oversubscription levels (E5).
func BenchmarkFig9aConstantBatch(b *testing.B) { runFigure(b, "9a") }

// BenchmarkFig9bSpikyBatch is E6: the spiky-arrival variant of Figure 9.
func BenchmarkFig9bSpikyBatch(b *testing.B) { runFigure(b, "9b") }

// BenchmarkFig10aConstantHomog compares pruned vs unpruned homogeneous
// heuristics under constant arrivals (E7).
func BenchmarkFig10aConstantHomog(b *testing.B) { runFigure(b, "10a") }

// BenchmarkFig10bSpikyHomog is E8: the spiky-arrival variant of Figure 10.
func BenchmarkFig10bSpikyHomog(b *testing.B) { runFigure(b, "10b") }

// BenchmarkAblationFairness sweeps the fairness factor c (A1).
func BenchmarkAblationFairness(b *testing.B) { runFigure(b, "a1") }

// BenchmarkAblationQueueSlots sweeps machine-queue capacity (A2).
func BenchmarkAblationQueueSlots(b *testing.B) { runFigure(b, "a2") }

// BenchmarkExtEnergyCost measures wasted work/energy with vs without
// pruning (A3, the paper's Section-VII analysis).
func BenchmarkExtEnergyCost(b *testing.B) { runFigure(b, "a3") }

// BenchmarkSimulationMM15K times one full 15K-task batch-mode simulation
// with the pruning mechanism attached — the simulator's core hot path.
func BenchmarkSimulationMM15K(b *testing.B) {
	matrix := prunesim.StandardPET()
	platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Matrix:          matrix,
		Heuristic:       "MM",
		Pruning:         prunesim.DefaultPruning(matrix.NumTaskTypes()),
		Seed:            1,
		ExcludeBoundary: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	wcfg := prunesim.DefaultWorkload(15000)
	b.ResetTimer()
	var rob float64
	for i := 0; i < b.N; i++ {
		res, err := platform.RunTrial(wcfg, i)
		if err != nil {
			b.Fatal(err)
		}
		rob = res.Robustness
	}
	b.ReportMetric(rob, "robustness_%")
}

// BenchmarkSimulationImmediateKPB15K times the immediate-mode hot path.
func BenchmarkSimulationImmediateKPB15K(b *testing.B) {
	matrix := prunesim.StandardPET()
	pruning := prunesim.DefaultPruning(matrix.NumTaskTypes())
	pruning.DeferEnabled = false
	platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Matrix:          matrix,
		Mode:            prunesim.ImmediateAllocation,
		Heuristic:       "KPB",
		Pruning:         pruning,
		Seed:            1,
		ExcludeBoundary: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	wcfg := prunesim.DefaultWorkload(15000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.RunTrial(wcfg, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtValueAwarePruning evaluates the cost/priority-aware pruning
// extension (A4, the paper's other Section-VII future-work item).
func BenchmarkExtValueAwarePruning(b *testing.B) { runFigure(b, "a4") }

// mm1MTasks sizes the million-task benchmarks.
const mm1MTasks = 1_000_000

// mm1MWorkload is the million-task workload: the paper's spiky shape with
// the time span (and spike count) scaled from the 15K benchmark so the
// oversubscription level — and with it the in-flight task window — stays
// constant while the task count grows 66x. Runtime and streaming memory
// then scale linearly, which is exactly what the bytes/op gate measures.
func mm1MWorkload() prunesim.WorkloadConfig {
	cfg := prunesim.DefaultWorkload(mm1MTasks)
	scale := float64(mm1MTasks) / 15000
	cfg.TimeSpan *= scale
	cfg.NumSpikes = int(float64(cfg.NumSpikes) * scale)
	return cfg
}

// mm1MPlatform is the platform under the million-task benchmarks: the 15K
// benchmark's batch-MM configuration.
func mm1MPlatform(b *testing.B) *prunesim.Platform {
	b.Helper()
	matrix := prunesim.StandardPET()
	platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Matrix:          matrix,
		Heuristic:       "MM",
		Pruning:         prunesim.DefaultPruning(matrix.NumTaskTypes()),
		Seed:            1,
		ExcludeBoundary: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	return platform
}

// BenchmarkSimulationMM1M runs one full million-task batch-MM trial per
// iteration over the streaming path: workload generation, simulation and
// statistics with memory bounded by the in-flight window. Its bytes/op is
// the CI memory gate for million-task trials (run with -benchmem; see
// scripts/bench_snapshot.sh) — the materialized variant below is the
// reference it must stay far under.
func BenchmarkSimulationMM1M(b *testing.B) {
	platform := mm1MPlatform(b)
	wcfg := mm1MWorkload()
	b.ResetTimer()
	var rob float64
	for i := 0; i < b.N; i++ {
		res, err := platform.RunTrialStream(wcfg, i)
		if err != nil {
			b.Fatal(err)
		}
		rob = res.Robustness
	}
	b.ReportMetric(rob, "robustness_%")
}

// BenchmarkSimulationMM1MMaterialized is the same trial over the
// materialize-everything path — the before picture the streaming bytes/op
// win is measured against. Not part of the CI gate's baseline comparisons;
// it exists so `benchdiff` can show the ratio on demand.
func BenchmarkSimulationMM1MMaterialized(b *testing.B) {
	platform := mm1MPlatform(b)
	wcfg := mm1MWorkload()
	b.ResetTimer()
	var rob float64
	for i := 0; i < b.N; i++ {
		res, err := platform.RunTrial(wcfg, i)
		if err != nil {
			b.Fatal(err)
		}
		rob = res.Robustness
	}
	b.ReportMetric(rob, "robustness_%")
}
