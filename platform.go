package prunesim

import (
	"fmt"

	"prunesim/internal/sched"
	"prunesim/internal/sim"
)

// schedByName resolves a heuristic name to a fresh instance.
func schedByName(name string) (any, bool, error) { return sched.ByName(name) }

// PlatformConfig describes a serverless platform to simulate: its machines,
// allocation mode, mapping heuristic and pruning mechanism.
type PlatformConfig struct {
	// Matrix is the PET matrix; nil selects StandardPET().
	Matrix *PETMatrix
	// MachineTypes assigns a PET machine-type column to each machine; nil
	// selects one machine of every type of the matrix.
	MachineTypes []int
	// Mode is the allocation style; the zero value is BatchAllocation.
	Mode AllocationMode
	// Heuristic is a mapping heuristic name from HeuristicNames(); empty
	// selects "MM" in batch mode and "MCT" in immediate mode.
	Heuristic string
	// QueueSlots caps pending tasks per machine queue in batch mode
	// (default 2).
	QueueSlots int
	// Pruning configures the pruning mechanism; the zero value disables
	// probabilistic pruning.
	Pruning PruningConfig
	// Seed drives execution-time sampling.
	Seed uint64
	// ExcludeBoundary excludes the first/last N tasks from statistics
	// (paper: 100). Values larger than the workload allow are clamped.
	ExcludeBoundary int
	// PCTTailEps, in [0, 1), enables ε-conservative completion-time tail
	// compression: each chain convolution folds at most this much tail
	// probability mass into a catch-all bin, bounding PCT support on long
	// queues. 0 keeps exact distributions. Compression only ever lowers
	// estimated success chances, so pruning stays conservative.
	PCTTailEps float64
	// Observer, when non-nil, receives every task lifecycle event.
	Observer func(TraceEvent)
}

// Platform is a configured serverless-platform simulator. Each Run builds a
// fresh heuristic instance, so a Platform may be reused across workloads.
type Platform struct {
	cfg PlatformConfig
}

// NewPlatform validates the configuration and returns a Platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	if cfg.Matrix == nil {
		cfg.Matrix = StandardPET()
	}
	if cfg.MachineTypes == nil {
		cfg.MachineTypes = make([]int, cfg.Matrix.NumMachineTypes())
		for j := range cfg.MachineTypes {
			cfg.MachineTypes[j] = j
		}
	}
	if cfg.Heuristic == "" {
		if cfg.Mode == ImmediateAllocation {
			cfg.Heuristic = "MCT"
		} else {
			cfg.Heuristic = "MM"
		}
	}
	if cfg.Pruning.NumTaskTypes == 0 {
		cfg.Pruning.NumTaskTypes = cfg.Matrix.NumTaskTypes()
	}
	h, imm, err := sched.ByName(cfg.Heuristic)
	if err != nil {
		return nil, err
	}
	_ = h
	if imm && cfg.Mode != ImmediateAllocation {
		return nil, fmt.Errorf("prunesim: heuristic %q requires ImmediateAllocation", cfg.Heuristic)
	}
	if !imm && cfg.Mode != BatchAllocation {
		return nil, fmt.Errorf("prunesim: heuristic %q requires BatchAllocation", cfg.Heuristic)
	}
	if err := cfg.Pruning.Validate(); err != nil {
		return nil, err
	}
	if cfg.PCTTailEps < 0 || cfg.PCTTailEps >= 1 {
		return nil, fmt.Errorf("prunesim: PCTTailEps %v out of range [0, 1)", cfg.PCTTailEps)
	}
	return &Platform{cfg: cfg}, nil
}

// Config returns the platform's (defaulted) configuration.
func (p *Platform) Config() PlatformConfig { return p.cfg }

// Run simulates the platform over the given workload. Task structs are
// mutated in place (statuses, start/completion times); generate a fresh
// workload per run to compare configurations.
func (p *Platform) Run(tasks []*Task) (*Result, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("prunesim: empty workload")
	}
	h, _, err := sched.ByName(p.cfg.Heuristic) // fresh instance per run
	if err != nil {
		return nil, err
	}
	exclude := p.cfg.ExcludeBoundary
	if 2*exclude >= len(tasks) {
		exclude = (len(tasks) - 1) / 2
	}
	return sim.Run(p.cfg.Matrix, tasks, sim.Config{
		Mode:            p.cfg.Mode,
		Heuristic:       h,
		MachineTypes:    p.cfg.MachineTypes,
		Slots:           p.cfg.QueueSlots,
		Prune:           p.cfg.Pruning,
		Seed:            p.cfg.Seed,
		ExcludeBoundary: exclude,
		TailEps:         p.cfg.PCTTailEps,
		Observer:        p.cfg.Observer,
	})
}

// RunTrial generates workload trial number `trial` from cfg and runs it.
func (p *Platform) RunTrial(wcfg WorkloadConfig, trial int) (*Result, error) {
	wcfg.Trial = trial
	tasks, err := GenerateWorkload(p.cfg.Matrix, wcfg)
	if err != nil {
		return nil, err
	}
	return p.Run(tasks)
}

// RunStream simulates the platform over a streaming workload source with
// memory bounded by the in-flight task window plus fixed per-machine state —
// never by the total task count. Tasks are recycled into the source's arena
// the moment their outcome is tallied. On workloads large enough that
// ExcludeBoundary needs no clamping, the Result is bitwise-identical to Run
// over the materialized equivalent (tiny workloads clamp the boundary
// slightly differently: n/4 here versus Run's (n-1)/2).
func (p *Platform) RunStream(src *WorkloadSource) (*Result, error) {
	h, _, err := sched.ByName(p.cfg.Heuristic) // fresh instance per run
	if err != nil {
		return nil, err
	}
	return sim.RunStream(p.cfg.Matrix, src, sim.Config{
		Mode:                p.cfg.Mode,
		Heuristic:           h,
		MachineTypes:        p.cfg.MachineTypes,
		Slots:               p.cfg.QueueSlots,
		Prune:               p.cfg.Pruning,
		Seed:                p.cfg.Seed,
		ExcludeBoundary:     p.cfg.ExcludeBoundary,
		AutoExcludeBoundary: true,
		TailEps:             p.cfg.PCTTailEps,
		Observer:            p.cfg.Observer,
	})
}

// RunTrialStream generates workload trial number `trial` as a stream and
// runs it memory-bounded — the path for million-task trials.
func (p *Platform) RunTrialStream(wcfg WorkloadConfig, trial int) (*Result, error) {
	wcfg.Trial = trial
	src, err := NewWorkloadSource(p.cfg.Matrix, wcfg)
	if err != nil {
		return nil, err
	}
	return p.RunStream(src)
}
