// Command hcsim runs a single simulation of the heterogeneous serverless
// platform and prints the outcome breakdown — the quickest way to poke at
// one configuration.
//
// Usage:
//
//	hcsim -heuristic MM -tasks 15000 -prune
//	hcsim -heuristic KPB -mode immediate -tasks 20000 -prune -toggle always
//	hcsim -heuristic EDF -homogeneous -tasks 25000 -pattern constant
package main

import (
	"flag"
	"fmt"
	"os"

	"prunesim"
)

func main() {
	var (
		heuristic   = flag.String("heuristic", "MM", "mapping heuristic (RR, MET, MCT, KPB, OLB, MM, MSD, MMU, MaxMin, Sufferage, FCFS-RR, EDF, SJF)")
		mode        = flag.String("mode", "batch", "allocation mode: batch or immediate")
		tasks       = flag.Int("tasks", 15000, "total tasks (oversubscription level)")
		pattern     = flag.String("pattern", "spiky", "arrival pattern: spiky or constant")
		homogeneous = flag.Bool("homogeneous", false, "use the homogeneous system (8 identical machines)")
		prune       = flag.Bool("prune", false, "attach the pruning mechanism")
		threshold   = flag.Float64("threshold", 0.5, "pruning threshold (chance of success)")
		fairness    = flag.Float64("fairness", 0.05, "fairness factor c")
		toggle      = flag.String("toggle", "reactive", "dropping toggle: never, always, reactive")
		noDefer     = flag.Bool("nodefer", false, "disable the deferring operation")
		slots       = flag.Int("slots", 2, "pending queue slots per machine (batch mode)")
		trial       = flag.Int("trial", 0, "workload trial number")
		seed        = flag.Uint64("seed", 1, "execution-time sampling seed")
		energyFlag  = flag.Bool("energy", false, "print the energy/cost report")
		calibrate   = flag.Bool("calibration", false, "print the chance-of-success reliability table")
	)
	flag.Parse()

	matrix := prunesim.StandardPET()
	machines := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if *homogeneous {
		matrix = prunesim.HomogeneousPET()
		machines = make([]int, 8)
	}
	pruning := prunesim.NoPruning(matrix.NumTaskTypes())
	if *prune {
		pruning = prunesim.DefaultPruning(matrix.NumTaskTypes())
		pruning.Threshold = *threshold
		pruning.FairnessFactor = *fairness
		pruning.DeferEnabled = !*noDefer
		switch *toggle {
		case "never":
			pruning.DropMode = prunesim.ToggleNever
		case "always":
			pruning.DropMode = prunesim.ToggleAlways
		case "reactive":
			pruning.DropMode = prunesim.ToggleReactive
		default:
			fatal(fmt.Errorf("unknown toggle %q", *toggle))
		}
	}
	allocMode := prunesim.BatchAllocation
	if *mode == "immediate" {
		allocMode = prunesim.ImmediateAllocation
	} else if *mode != "batch" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Matrix:          matrix,
		MachineTypes:    machines,
		Mode:            allocMode,
		Heuristic:       *heuristic,
		QueueSlots:      *slots,
		Pruning:         pruning,
		Seed:            *seed,
		ExcludeBoundary: 100,
	})
	if err != nil {
		fatal(err)
	}
	wcfg := prunesim.DefaultWorkload(*tasks)
	switch *pattern {
	case "spiky":
		wcfg.Pattern = prunesim.SpikyArrival
	case "constant":
		wcfg.Pattern = prunesim.ConstantArrival
	default:
		fatal(fmt.Errorf("unknown pattern %q", *pattern))
	}
	if *calibrate {
		wcfg.Trial = *trial
		rep, err := platform.AssessCalibration(prunesim.GenerateWorkload(matrix, wcfg), 10)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		return
	}
	res, err := platform.RunTrial(wcfg, *trial)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("heuristic=%s mode=%s pattern=%s tasks=%d pruning=%v\n",
		*heuristic, *mode, *pattern, *tasks, *prune)
	fmt.Printf("robustness:        %6.2f%% (%d/%d on time)\n", res.Robustness, res.OnTime, res.Counted)
	fmt.Printf("late completions:  %6d\n", res.Late)
	fmt.Printf("dropped reactive:  %6d\n", res.DroppedReactive)
	fmt.Printf("dropped proactive: %6d\n", res.DroppedProactive)
	fmt.Printf("unfinished:        %6d\n", res.Unfinished)
	fmt.Printf("deferrals:         %6d\n", res.Deferrals)
	fmt.Printf("mapping events:    %6d\n", res.MappingEvents)
	fmt.Printf("makespan:          %8.1f time units\n", res.Makespan)
	fmt.Printf("busy time:         %8.1f (wasted on late tasks: %.1f)\n", res.BusyTime, res.WastedTime)
	if *energyFlag {
		rep, err := prunesim.AnalyzeEnergy(res, len(machines), prunesim.DefaultEnergyParams())
		if err != nil {
			fatal(err)
		}
		fmt.Printf("energy:            %8.0f kJ total, %.0f kJ wasted (%.1f%%)\n",
			rep.TotalJoules/1000, rep.WastedJoules/1000, 100*rep.WastedFraction)
		fmt.Printf("cost:              $%7.2f total, $%.2f wasted\n", rep.TotalDollars, rep.WastedDollars)
		fmt.Printf("efficiency:        %8.0f J per on-time task\n", rep.JoulesPerOnTimeTask)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcsim:", err)
	os.Exit(1)
}
