// Command hcsim runs simulations of the heterogeneous serverless platform
// and prints the outcome breakdown — the quickest way to poke at one
// configuration.
//
// The preferred front end is a declarative scenario file (see
// examples/scenarios/ and DESIGN.md for the schema):
//
//	hcsim --scenario examples/scenarios/paper_fig9b_mm_pruned.json
//	hcsim --scenario examples/scenarios/bursty_arrivals.json --trials 5 --scale 0.2
//	hcsim --scenario examples/scenarios/mixed_sla_classes.json --out outcome.json
//	hcsim --scenario examples/scenarios/service_smoke.json --out - | jq .robustness
//
// Individual flags assemble a single ad-hoc trial instead:
//
//	hcsim -heuristic MM -tasks 15000 -prune
//	hcsim -heuristic KPB -mode immediate -tasks 20000 -prune -toggle always
//	hcsim -heuristic EDF -homogeneous -tasks 25000 -pattern constant
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prunesim"
	"prunesim/internal/cli"
	"prunesim/internal/timeline"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "run a declarative scenario file (JSON; see examples/scenarios/)")
		trials       = flag.Int("trials", 0, "override the scenario's trial count")
		parallelism  = flag.Int("parallelism", 0, "override the scenario's max concurrent trials")
		scale        = flag.Float64("scale", 0, "override the scenario's workload scale factor")
		pace         = flag.Float64("pace", 0, "run trials sequentially against a real clock this many times faster than simulated time (0 = as fast as possible)")
		outPath      = flag.String("out", "", "write the full outcome (scenario + per-trial results) as JSON")

		heuristic   = flag.String("heuristic", "MM", "mapping heuristic (RR, MET, MCT, KPB, OLB, MM, MSD, MMU, MaxMin, Sufferage, FCFS-RR, EDF, SJF)")
		mode        = flag.String("mode", "batch", "allocation mode: batch or immediate")
		tasks       = flag.Int("tasks", 15000, "total tasks (oversubscription level)")
		pattern     = flag.String("pattern", "spiky", "arrival model: spiky, constant, poisson, diurnal or mmpp")
		homogeneous = flag.Bool("homogeneous", false, "use the homogeneous system (8 identical machines)")
		prune       = flag.Bool("prune", false, "attach the pruning mechanism")
		threshold   = flag.Float64("threshold", 0.5, "pruning threshold (chance of success)")
		fairness    = flag.Float64("fairness", 0.05, "fairness factor c")
		toggle      = flag.String("toggle", "reactive", "dropping toggle: never, always, reactive")
		noDefer     = flag.Bool("nodefer", false, "disable the deferring operation")
		slots       = flag.Int("slots", 2, "pending queue slots per machine (batch mode)")
		trial       = flag.Int("trial", 0, "workload trial number")
		seed        = flag.Uint64("seed", 1, "random seed (scenario mode: workload seed; ad-hoc mode: execution sampling seed)")
		energyFlag  = flag.Bool("energy", false, "print the energy/cost report")
		calibrate   = flag.Bool("calibration", false, "print the chance-of-success reliability table")
	)
	flag.Parse()

	if *scenarioPath != "" {
		runScenario(*scenarioPath, overrides{
			trials:      *trials,
			parallelism: *parallelism,
			scale:       *scale,
			seed:        *seed,
			pace:        *pace,
			out:         *outPath,
			energy:      *energyFlag,
		})
		return
	}
	for _, name := range []string{"trials", "parallelism", "scale", "pace", "out"} {
		if flagSet(name) {
			fatal(fmt.Errorf("-%s applies only with -scenario", name))
		}
	}

	matrix := prunesim.StandardPET()
	machines := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if *homogeneous {
		matrix = prunesim.HomogeneousPET()
		machines = make([]int, 8)
	}
	pruning := prunesim.NoPruning(matrix.NumTaskTypes())
	if *prune {
		pruning = prunesim.DefaultPruning(matrix.NumTaskTypes())
		pruning.Threshold = *threshold
		pruning.FairnessFactor = *fairness
		pruning.DeferEnabled = !*noDefer
		switch *toggle {
		case "never":
			pruning.DropMode = prunesim.ToggleNever
		case "always":
			pruning.DropMode = prunesim.ToggleAlways
		case "reactive":
			pruning.DropMode = prunesim.ToggleReactive
		default:
			fatal(fmt.Errorf("unknown toggle %q", *toggle))
		}
	}
	allocMode := prunesim.BatchAllocation
	if *mode == "immediate" {
		allocMode = prunesim.ImmediateAllocation
	} else if *mode != "batch" {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}
	platform, err := prunesim.NewPlatform(prunesim.PlatformConfig{
		Matrix:          matrix,
		MachineTypes:    machines,
		Mode:            allocMode,
		Heuristic:       *heuristic,
		QueueSlots:      *slots,
		Pruning:         pruning,
		Seed:            *seed,
		ExcludeBoundary: 100,
	})
	if err != nil {
		fatal(err)
	}
	wcfg := prunesim.DefaultWorkload(*tasks)
	// Any arrival-model name works here; diurnal and mmpp run with their
	// default shapes (scenario files configure custom curves).
	wcfg.Model = *pattern
	if *calibrate {
		wcfg.Trial = *trial
		tasks, err := prunesim.GenerateWorkload(matrix, wcfg)
		if err != nil {
			fatal(err)
		}
		rep, err := platform.AssessCalibration(tasks, 10)
		if err != nil {
			fatal(err)
		}
		fmt.Println(rep)
		return
	}
	res, err := platform.RunTrial(wcfg, *trial)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("heuristic=%s mode=%s pattern=%s tasks=%d pruning=%v\n",
		*heuristic, *mode, *pattern, *tasks, *prune)
	printResult(res)
	if *energyFlag {
		printEnergy(res, len(machines))
	}
}

// overrides carries the scenario-mode flag overrides; each applies only
// when its flag was given explicitly on the command line.
type overrides struct {
	trials      int
	parallelism int
	scale       float64
	seed        uint64
	pace        float64
	out         string
	energy      bool
}

// runScenario loads and executes a scenario file and prints its summary.
func runScenario(path string, o overrides) {
	sc, err := prunesim.LoadScenario(path)
	if err != nil {
		fatal(err)
	}
	// Explicit overrides pass through even when invalid (negative trials,
	// zero scale), so normalization rejects them loudly instead of
	// silently keeping the file's setting.
	if flagSet("trials") {
		sc.Run.Trials = o.trials
	}
	if flagSet("parallelism") {
		sc.Run.Parallelism = o.parallelism
	}
	if flagSet("scale") {
		sc.Run.Scale = o.scale
	}
	if flagSet("seed") {
		sc.Run.Seed = o.seed
	}
	// The live view: every finished trial folds into a streaming timeline
	// (the same aggregator prunesimd serves at /v1/jobs/{id}/timeline) and
	// refreshes a progress line on stderr — in-place on a TTY, milestone
	// lines otherwise.
	tl := timeline.New(sc.Run.Trials)
	progress := newProgressPrinter(os.Stderr, sc.Run.Trials)
	start := time.Now()
	onTrial := func(p prunesim.ScenarioTrialProgress) {
		tl.Observe(timeline.Observation{
			Trial:      p.Trial,
			At:         time.Since(start).Seconds(),
			Duration:   p.DurationSeconds,
			Robustness: p.Robustness,
			Counts: timeline.Counts{
				Counted:          p.Counted,
				OnTime:           p.OnTime,
				Late:             p.Late,
				DroppedReactive:  p.DroppedReactive,
				DroppedProactive: p.DroppedProactive,
				Unfinished:       p.Unfinished,
				Deferrals:        p.Deferrals,
			},
		})
		progress.update(p, tl)
	}
	study := prunesim.NewStudy(sc).OnTrial(onTrial)
	if o.pace != 0 {
		// Paced mode plays the scenario against the wall clock (o.pace
		// simulated time units per second of ×1 speedup) — live demos of
		// machine churn rather than batch throughput.
		study = study.Paced(o.pace)
	}
	outcome, err := study.Run()
	progress.finish()
	if err != nil {
		fatal(err)
	}
	sc = outcome.Scenario // normalized: defaults filled in
	fmt.Printf("scenario: %s\n", sc.Name)
	if sc.Description != "" {
		fmt.Printf("  %s\n", sc.Description)
	}
	fmt.Printf("platform: profile=%s machines=%d heuristic=%s pattern=%s tasks=%d prune=%v\n",
		sc.Platform.Profile, sc.Platform.Machines, sc.Platform.Heuristic,
		sc.Workload.Pattern, sc.Workload.Tasks, sc.Prune.Enabled)
	fmt.Printf("run:      trials=%d scale=%g seed=%#x\n", sc.Run.Trials, sc.Run.Scale, sc.Run.Seed)
	fmt.Printf("robustness:          %6.2f%% ± %.2f (95%% CI over %d trials)\n",
		outcome.Robustness.Mean, outcome.Robustness.CI95, outcome.Robustness.N)
	if sc.Workload.ValueHi > 0 {
		fmt.Printf("weighted robustness: %6.2f%% ± %.2f\n",
			outcome.WeightedRobustness.Mean, outcome.WeightedRobustness.CI95)
	}
	// Mean per-trial outcome breakdown.
	var onTime, late, dropR, dropP, unfinished, deferrals float64
	for _, r := range outcome.Results {
		onTime += float64(r.OnTime)
		late += float64(r.Late)
		dropR += float64(r.DroppedReactive)
		dropP += float64(r.DroppedProactive)
		unfinished += float64(r.Unfinished)
		deferrals += float64(r.Deferrals)
	}
	n := float64(len(outcome.Results))
	fmt.Printf("mean per trial:      on-time %.0f, late %.0f, dropped reactive %.0f, dropped proactive %.0f, unfinished %.0f, deferrals %.0f\n",
		onTime/n, late/n, dropR/n, dropP/n, unfinished/n, deferrals/n)
	printTimeline(tl.Snapshot())
	if o.energy {
		printEnergy(outcome.Results[0], sc.Platform.Machines)
	}
	if o.out != "" {
		// "-" streams to stdout; parent directories are created on demand.
		// The report wraps the outcome with the run's final timeline
		// snapshot (the outcome's own fields are unchanged).
		report := struct {
			*prunesim.ScenarioOutcome
			Timeline *timeline.Snapshot `json:"timeline"`
		}{outcome, tl.Snapshot()}
		if err := cli.WriteJSON(o.out, report); err != nil {
			fatal(err)
		}
		if o.out != "-" {
			fmt.Printf("wrote %s\n", o.out)
		}
	}
}

// progressPrinter renders live per-trial progress on w: a single
// carriage-return-rewritten line when w is a terminal, sparse milestone
// lines (~10 per run) otherwise — so piped and CI output stays readable.
type progressPrinter struct {
	w     *os.File
	tty   bool
	total int
	every int
	wrote bool
}

func newProgressPrinter(w *os.File, total int) *progressPrinter {
	every := total / 10
	if every < 1 {
		every = 1
	}
	fi, err := w.Stat()
	tty := err == nil && fi.Mode()&os.ModeCharDevice != 0
	return &progressPrinter{w: w, tty: tty, total: total, every: every}
}

// update reports one finished trial against the timeline so far.
func (pp *progressPrinter) update(p prunesim.ScenarioTrialProgress, tl *timeline.Timeline) {
	if !pp.tty && p.Done%pp.every != 0 && p.Done != pp.total {
		return
	}
	s := tl.Snapshot()
	line := fmt.Sprintf("trial %d/%d · robustness %.2f%% (p50 %.2f) · on-time %.1f%% late %.1f%% dropped %.1f%% · %.1f trials/s",
		p.Done, p.Total, s.Robustness.Mean, s.Robustness.P50,
		s.Rates.OnTimePercent, s.Rates.LatePercent,
		s.Rates.DroppedReactivePercent+s.Rates.DroppedProactivePercent,
		s.TrialsPerSec)
	if pp.tty {
		fmt.Fprintf(pp.w, "\r\x1b[K%s", line)
		pp.wrote = true
	} else {
		fmt.Fprintln(pp.w, line)
	}
}

// finish terminates the in-place line so the report starts on a fresh row.
func (pp *progressPrinter) finish() {
	if pp.tty && pp.wrote {
		fmt.Fprintln(pp.w)
	}
}

// printTimeline renders the final timeline section of the console report.
func printTimeline(s *timeline.Snapshot) {
	if s.TrialsDone == 0 {
		return
	}
	fmt.Printf("timeline:            %d trials in %.1fs (%.1f trials/s), %d bins × %gs\n",
		s.TrialsDone, s.ElapsedSeconds, s.TrialsPerSec, len(s.Bins), s.BinWidthSeconds)
	fmt.Printf("  robustness:        p50 %.2f  p90 %.2f  p99 %.2f  (min %.2f, max %.2f)\n",
		s.Robustness.P50, s.Robustness.P90, s.Robustness.P99, s.Robustness.Min, s.Robustness.Max)
	if d := s.TrialDuration; d != nil {
		fmt.Printf("  trial duration:    p50 %s  p90 %s  p99 %s\n",
			fmtSeconds(d.P50), fmtSeconds(d.P90), fmtSeconds(d.P99))
	}
	if len(s.Bins) > 0 {
		fmt.Printf("  %8s %7s %9s %6s %6s %6s %6s %7s\n",
			"t[s]", "trials", "on-time%", "late", "dropR", "dropP", "unfin", "defer")
		for _, b := range s.Bins {
			if b.Trials == 0 {
				continue
			}
			fmt.Printf("  %8.1f %7d %9.1f %6d %6d %6d %6d %7d\n",
				b.StartSeconds, b.Trials, b.OnTimePercent,
				b.Counts.Late, b.Counts.DroppedReactive, b.Counts.DroppedProactive,
				b.Counts.Unfinished, b.Counts.Deferrals)
		}
	}
}

// fmtSeconds renders a duration in seconds with a sensible unit.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Millisecond).String()
}

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// printResult prints the outcome breakdown of one simulation run.
func printResult(res *prunesim.Result) {
	fmt.Printf("robustness:        %6.2f%% (%d/%d on time)\n", res.Robustness, res.OnTime, res.Counted)
	fmt.Printf("late completions:  %6d\n", res.Late)
	fmt.Printf("dropped reactive:  %6d\n", res.DroppedReactive)
	fmt.Printf("dropped proactive: %6d\n", res.DroppedProactive)
	fmt.Printf("unfinished:        %6d\n", res.Unfinished)
	fmt.Printf("deferrals:         %6d\n", res.Deferrals)
	fmt.Printf("mapping events:    %6d\n", res.MappingEvents)
	fmt.Printf("makespan:          %8.1f time units\n", res.Makespan)
	fmt.Printf("busy time:         %8.1f (wasted on late tasks: %.1f)\n", res.BusyTime, res.WastedTime)
}

// printEnergy prints the energy/cost report of one run.
func printEnergy(res *prunesim.Result, machines int) {
	rep, err := prunesim.AnalyzeEnergy(res, machines, prunesim.DefaultEnergyParams())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("energy:            %8.0f kJ total, %.0f kJ wasted (%.1f%%)\n",
		rep.TotalJoules/1000, rep.WastedJoules/1000, 100*rep.WastedFraction)
	fmt.Printf("cost:              $%7.2f total, $%.2f wasted\n", rep.TotalDollars, rep.WastedDollars)
	fmt.Printf("efficiency:        %8.0f J per on-time task\n", rep.JoulesPerOnTimeTask)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hcsim:", err)
	os.Exit(1)
}
