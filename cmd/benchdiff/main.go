// Command benchdiff turns Go benchmark output into the repo's stable
// BENCH_*.json schema and compares two such files against a regression
// threshold. It is the measurement tool behind the CI bench-regression
// gate and the local workflow documented in DESIGN.md's Performance
// section.
//
// Usage:
//
//	go test -json -run '^$' -bench . ./... | benchdiff parse -o BENCH_head.json
//	benchdiff parse -o BENCH_head.json bench_raw.jsonl
//	benchdiff diff [-threshold 15] [-bytes-threshold 15] [-allow-missing] BENCH_baseline.json BENCH_head.json
//
// parse accepts both `go test -bench` text and `go test -json -bench`
// streams, from stdin or from file arguments, and aggregates -count
// repetitions (minimum ns/op, maximum allocs/op and bytes/op). diff exits
// 1 when any benchmark is more than threshold percent slower, allocates
// more per op than the baseline allows (a small slack absorbs
// parallel-benchmark noise; zero-alloc benchmarks are gated exactly),
// grows bytes/op beyond -bytes-threshold (the memory-footprint gate behind
// the million-task streaming trials; skipped when either side ran without
// -benchmem), or has vanished (unless -allow-missing). Benchmarks present
// only in the current run cannot fail the gate, but they are listed as
// "new, no baseline" with a reminder to re-baseline so they do not stay
// ungated.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"prunesim/internal/benchfmt"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "parse":
		err = runParse(os.Args[2:])
	case "diff":
		err = runDiff(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "benchdiff: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  benchdiff parse [-o FILE] [INPUT...]
      Parse 'go test -bench' or 'go test -json -bench' output (stdin when
      no INPUT) into BENCH_*.json. -count runs are aggregated.
  benchdiff diff [-threshold PCT] [-allocs-slack PCT] [-bytes-threshold PCT] [-allow-missing] BASELINE CURRENT
      Compare two BENCH_*.json files. Exit 1 on any regression: ns/op more
      than threshold percent above baseline (default 15), allocs/op growth
      beyond the slack (default 1%; 0 allocs/op stays exact), bytes/op more
      than bytes-threshold percent above baseline (default 15; skipped when
      either run lacks -benchmem memory statistics), or a baseline
      benchmark missing from CURRENT. Benchmarks only in CURRENT are listed
      as "new, no baseline" — re-baseline to gate them.
`)
}

func runParse(args []string) error {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	out := fs.String("o", "-", "output file ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := benchfmt.NewParser()
	if fs.NArg() == 0 {
		if err := p.Read(os.Stdin); err != nil {
			return err
		}
	}
	for _, name := range fs.Args() {
		if err := readInto(p, name); err != nil {
			return err
		}
	}
	f := p.File()
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if err := f.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) parsed\n", len(f.Benchmarks))
	return nil
}

func readInto(p *benchfmt.Parser, name string) error {
	f, err := os.Open(name)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Read(f); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	return nil
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 15, "ns/op regression tolerance in percent")
	allocsSlack := fs.Float64("allocs-slack", 1, "allocs/op tolerance in percent (absorbs parallel-benchmark noise; 0 allocs/op stays exact)")
	bytesThreshold := fs.Float64("bytes-threshold", 15, "bytes/op regression tolerance in percent (skipped without -benchmem data)")
	allowMissing := fs.Bool("allow-missing", false, "do not fail when a baseline benchmark is absent from the current run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two files: BASELINE CURRENT")
	}
	baseline, err := loadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	current, err := loadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	rep := benchfmt.Diff(baseline, current, benchfmt.DiffOptions{
		NsThresholdPct:    *threshold,
		AllocsSlackPct:    *allocsSlack,
		BytesThresholdPct: *bytesThreshold,
		AllowMissing:      *allowMissing,
	})
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	if rep.Failed() {
		return fmt.Errorf("%d regression(s) against %s (threshold %.0f%%); see DESIGN.md for how to re-baseline",
			rep.Regressions, fs.Arg(0), *threshold)
	}
	return nil
}

func loadFile(name string) (*benchfmt.File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	bf, err := benchfmt.Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return bf, nil
}
