package main

import (
	"os"
	"path/filepath"
	"testing"

	"prunesim/internal/store"
)

// TestBuildStore covers the -store flag wiring: backend selection, the
// LRU wrapper, and flag validation.
func TestBuildStore(t *testing.T) {
	mem, err := buildStore("memory", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, ok := mem.(*store.Memory); !ok {
		t.Fatalf("buildStore(memory) = %T, want *store.Memory", mem)
	}

	dir := t.TempDir()
	disk, err := buildStore("disk", dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if _, ok := disk.(*store.Disk); !ok {
		t.Fatalf("buildStore(disk) = %T, want *store.Disk", disk)
	}

	bounded, err := buildStore("memory", "", 100)
	if err != nil {
		t.Fatal(err)
	}
	defer bounded.Close()
	if _, ok := bounded.(*store.LRU); !ok {
		t.Fatalf("buildStore(memory, max 100) = %T, want *store.LRU", bounded)
	}

	if _, err := buildStore("redis", "", 0); err == nil {
		t.Fatal("buildStore(redis) succeeded, want error")
	}
	// A data dir that cannot be created surfaces the disk-store error.
	blocker := filepath.Join(t.TempDir(), "as-file")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := buildStore("disk", filepath.Join(blocker, "nested"), 0); err == nil {
		t.Fatal("buildStore(disk) under a file succeeded, want error")
	}
}

// TestBuildTenants covers the -keys / -anon-* flag wiring, including the
// flags-override-keyfile rule for the anonymous block.
func TestBuildTenants(t *testing.T) {
	// No keyfile, no limits: the unlimited anonymous registry.
	reg, err := buildTenants("", 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()

	// Keyfile plus anonymous-flag override.
	keyfile := filepath.Join(t.TempDir(), "keys.json")
	if err := os.WriteFile(keyfile, []byte(`{
		"anonymous": {"rate_qps": 5},
		"keys": [{"key": "k1", "name": "team-a", "rate_qps": 100}]
	}`), 0o600); err != nil {
		t.Fatal(err)
	}
	reg, err = buildTenants(keyfile, 50, 75, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	tn, ok := reg.Resolve("k1")
	if !ok || tn.Name() != "team-a" {
		t.Fatalf("keyfile tenant not resolvable: %v %v", tn, ok)
	}
	anon := reg.Anonymous().Limits()
	if anon.RateQPS != 50 || anon.Burst != 75 || anon.MaxInFlight != 4 {
		t.Fatalf("anonymous flags did not override keyfile: %+v", anon)
	}

	if _, err := buildTenants(filepath.Join(t.TempDir(), "missing.json"), 0, 0, 0); err == nil {
		t.Fatal("missing keyfile succeeded, want error")
	}
	if _, err := buildTenants("", -3, 0, 0); err == nil {
		t.Fatal("negative anon QPS succeeded, want error")
	}
}
