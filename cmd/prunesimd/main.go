// Command prunesimd is the prunesim serving daemon: an HTTP/JSON service
// that accepts scenario submissions, runs them asynchronously through the
// shared sweep engine on a bounded queue + worker pool, caches outcomes by
// canonical scenario content hash, and streams live per-trial progress. It
// also serves online admission control: register a platform as a session
// and stream real task arrivals through the pruner for accept/defer/drop
// verdicts.
//
//	prunesimd                          # listen on :8080
//	prunesimd -addr :9000 -workers 4   # bounded worker pool
//	prunesimd -scenarios ./my-lib      # extra scenario files on top of the
//	                                   # embedded examples/scenarios library
//	prunesimd -session-ttl 1h          # keep idle admission sessions longer
//
// Endpoints (the full surface, request/response schemas and the error
// envelope are documented in API.md; curl examples in README.md):
//
//	POST   /v1/jobs                  submit {"scenario": {...}} or {"name": "..."}
//	GET    /v1/jobs                  list jobs
//	GET    /v1/jobs/{id}             status + outcome
//	GET    /v1/jobs/{id}/events      SSE per-trial progress + periodic timeline
//	GET    /v1/jobs/{id}/timeline    live in-flight aggregate (binned rates,
//	                                 robustness-so-far, duration quantiles)
//	GET    /v1/jobs/{id}/trials.csv  per-trial CSV artifact
//	GET    /v1/scenarios             the scenario library
//	POST   /v1/sessions              register an admission-control session
//	GET    /v1/sessions              list live sessions
//	GET    /v1/sessions/{id}         session snapshot (machines, counters)
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/sessions/{id}/decide            verdict for one arriving task
//	POST   /v1/sessions/{id}/decide/batch      verdicts for a batch of arrivals
//	POST   /v1/sessions/{id}/complete          report a finished task
//	POST   /v1/sessions/{id}/machines/{machine}/fail    take a machine down
//	POST   /v1/sessions/{id}/machines/{machine}/rejoin  bring it back
//	GET    /healthz                  liveness
//	GET    /metrics                  Prometheus text metrics + latency histograms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	scenarios "prunesim/examples/scenarios"
	"prunesim/internal/cli"
	"prunesim/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		queue       = flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		parallelism = flag.Int("parallelism", 0, "max concurrent trials per job (0 = per-scenario setting)")
		extraDir    = flag.String("scenarios", "", "directory of extra scenario *.json files to add to the library")
		sessionTTL  = flag.Duration("session-ttl", 0, "idle TTL of admission sessions (0 = 15m default, negative = never expire)")
		maxSessions = flag.Int("max-sessions", 0, "live admission session cap (0 = 256 default)")
	)
	flag.Parse()

	library, err := scenarios.Library()
	if err != nil {
		fatal(err)
	}
	if *extraDir != "" {
		extra, err := cli.LoadScenarioDir(*extraDir)
		if err != nil {
			fatal(err)
		}
		log.Printf("loaded %d extra scenarios from %s", len(extra), *extraDir)
		library = append(library, extra...)
	}

	srv := service.New(service.Config{
		QueueCapacity: *queue,
		Workers:       *workers,
		Parallelism:   *parallelism,
		Library:       library,
		SessionTTL:    *sessionTTL,
		MaxSessions:   *maxSessions,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(srv.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let
	// in-flight jobs finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("prunesimd listening on %s (%d library scenarios, queue %d, workers %d)",
		*addr, len(library), *queue, *workers)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		log.Printf("shutting down: draining in-flight jobs")
		// Close the service first: it stops intake (new submissions get
		// 503), releases SSE streams and drains the workers — so the HTTP
		// shutdown below returns as soon as work is done instead of
		// waiting out its timeout behind a connected events subscriber.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prunesimd:", err)
	os.Exit(1)
}
