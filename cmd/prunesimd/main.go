// Command prunesimd is the prunesim serving daemon: an HTTP/JSON service
// that accepts scenario submissions, runs them asynchronously through the
// shared sweep engine on a bounded queue + worker pool, caches outcomes by
// canonical scenario content hash, and streams live per-trial progress. It
// also serves online admission control: register a platform as a session
// and stream real task arrivals through the pruner for accept/defer/drop
// verdicts.
//
//	prunesimd                          # listen on :8080
//	prunesimd -addr :9000 -workers 4   # bounded worker pool
//	prunesimd -scenarios ./my-lib      # extra scenario files on top of the
//	                                   # embedded examples/scenarios library
//	prunesimd -session-ttl 1h          # keep idle admission sessions longer
//
// Persistence: -store=disk makes the result cache survive restarts, one
// atomically-written JSON file per scenario hash under -data-dir;
// -store-max-entries bounds it with LRU eviction.
//
//	prunesimd -store=disk -data-dir ./cache -store-max-entries 10000
//
// Multi-tenancy: -keys loads a JSON keyfile of API keys with per-tenant
// rate limits and in-flight job caps; the -anon-* flags bound callers that
// present no key. Limits answer 429 with distinct error codes
// (rate_limited / inflight_limit) so clients can tell them from the
// queue's own backpressure (queue_full).
//
//	prunesimd -keys keys.json -anon-qps 50 -anon-inflight 4
//
// Sharding: workers declare their fleet position with -shard-of (minting
// globally-routable IDs like "s1-j000007"), and a front door started with
// -route-to proxies the whole v1 surface across them — submissions by
// scenario content hash, ID-addressed calls by ID prefix:
//
//	prunesimd -addr :8081 -shard-of 0/2 -store=disk -data-dir ./shard0
//	prunesimd -addr :8082 -shard-of 1/2 -store=disk -data-dir ./shard1
//	prunesimd -addr :8080 -route-to http://localhost:8081,http://localhost:8082
//
// Endpoints (the full surface, request/response schemas and the error
// envelope are documented in API.md; curl examples in README.md):
//
//	POST   /v1/jobs                  submit {"scenario": {...}} or {"name": "..."}
//	GET    /v1/jobs                  list jobs
//	GET    /v1/jobs/{id}             status + outcome
//	GET    /v1/jobs/{id}/events      SSE per-trial progress + periodic timeline
//	GET    /v1/jobs/{id}/timeline    live in-flight aggregate (binned rates,
//	                                 robustness-so-far, duration quantiles)
//	GET    /v1/jobs/{id}/trials.csv  per-trial CSV artifact
//	GET    /v1/scenarios             the scenario library
//	POST   /v1/sessions              register an admission-control session
//	GET    /v1/sessions              list live sessions
//	GET    /v1/sessions/{id}         session snapshot (machines, counters)
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/sessions/{id}/decide            verdict for one arriving task
//	POST   /v1/sessions/{id}/decide/batch      verdicts for a batch of arrivals
//	POST   /v1/sessions/{id}/complete          report a finished task
//	POST   /v1/sessions/{id}/machines/{machine}/fail    take a machine down
//	POST   /v1/sessions/{id}/machines/{machine}/rejoin  bring it back
//	GET    /healthz                  liveness
//	GET    /metrics                  Prometheus text metrics + latency histograms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	scenarios "prunesim/examples/scenarios"
	"prunesim/internal/cli"
	"prunesim/internal/scenario"
	"prunesim/internal/service"
	"prunesim/internal/shard"
	"prunesim/internal/store"
	"prunesim/internal/tenant"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		queue       = flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		parallelism = flag.Int("parallelism", 0, "max concurrent trials per job (0 = per-scenario setting)")
		extraDir    = flag.String("scenarios", "", "directory of extra scenario *.json files to add to the library")
		sessionTTL  = flag.Duration("session-ttl", 0, "idle TTL of admission sessions (0 = 15m default, negative = never expire)")
		maxSessions = flag.Int("max-sessions", 0, "live admission session cap (0 = 256 default)")

		storeKind  = flag.String("store", "memory", "result store backend: memory or disk")
		dataDir    = flag.String("data-dir", "prunesimd-data", "directory of the disk store (-store=disk)")
		maxEntries = flag.Int("store-max-entries", 0, "LRU cap on cached results (0 = unbounded)")

		keyfile      = flag.String("keys", "", "JSON keyfile of API keys and per-tenant limits")
		anonQPS      = flag.Float64("anon-qps", 0, "sustained request rate for callers without an API key (0 = unlimited)")
		anonBurst    = flag.Float64("anon-burst", 0, "token-bucket depth for anonymous callers (0 = max(1, ceil(anon-qps)))")
		anonInflight = flag.Int("anon-inflight", 0, "in-flight job cap for anonymous callers (0 = unlimited)")

		shardOf = flag.String("shard-of", "", "this daemon's fleet position i/N (e.g. 0/2); mints routable IDs s<i>-...")
		routeTo = flag.String("route-to", "", "front-door mode: comma-separated shard base URLs to route to (no local workers)")
	)
	flag.Parse()

	library, err := scenarios.Library()
	if err != nil {
		fatal(err)
	}
	if *extraDir != "" {
		extra, err := cli.LoadScenarioDir(*extraDir)
		if err != nil {
			fatal(err)
		}
		log.Printf("loaded %d extra scenarios from %s", len(extra), *extraDir)
		library = append(library, extra...)
	}

	if *routeTo != "" {
		runFrontDoor(*addr, *routeTo, library)
		return
	}

	st, err := buildStore(*storeKind, *dataDir, *maxEntries)
	if err != nil {
		fatal(err)
	}
	tenants, err := buildTenants(*keyfile, *anonQPS, *anonBurst, *anonInflight)
	if err != nil {
		fatal(err)
	}
	var shardIdx, shardCnt int
	var idPrefix string
	if *shardOf != "" {
		shardIdx, shardCnt, err = shard.ParseSpec(*shardOf)
		if err != nil {
			fatal(err)
		}
		idPrefix = shard.Prefix(shardIdx)
	}

	srv := service.New(service.Config{
		QueueCapacity: *queue,
		Workers:       *workers,
		Parallelism:   *parallelism,
		Store:         st,
		Tenants:       tenants,
		IDPrefix:      idPrefix,
		ShardIndex:    shardIdx,
		ShardCount:    shardCnt,
		Library:       library,
		SessionTTL:    *sessionTTL,
		MaxSessions:   *maxSessions,
	})
	banner := fmt.Sprintf("%d library scenarios, queue %d, workers %d, store %s",
		len(library), *queue, *workers, *storeKind)
	if *shardOf != "" {
		banner += ", shard " + *shardOf
	}
	serve(*addr, srv.Handler(), banner, srv.Close)
}

// runFrontDoor serves the shard router instead of a local service.
func runFrontDoor(addr, routeTo string, library []scenario.Scenario) {
	backends := strings.Split(routeTo, ",")
	for i := range backends {
		backends[i] = strings.TrimSpace(backends[i])
	}
	rt, err := shard.NewRouter(shard.RouterConfig{Backends: backends, Library: library})
	if err != nil {
		fatal(err)
	}
	serve(addr, rt.Handler(),
		fmt.Sprintf("front door over %d shards: %s", len(backends), strings.Join(backends, ", ")),
		func() {})
}

// buildStore assembles the result cache from the -store flags.
func buildStore(kind, dataDir string, maxEntries int) (store.Store, error) {
	var st store.Store
	switch kind {
	case "memory":
		st = store.NewMemory()
	case "disk":
		disk, err := store.OpenDisk(dataDir)
		if err != nil {
			return nil, err
		}
		log.Printf("disk store %s: %d cached results", dataDir, disk.Len())
		st = disk
	default:
		return nil, fmt.Errorf("unknown -store %q (want memory or disk)", kind)
	}
	if maxEntries > 0 {
		st = store.NewLRU(st, maxEntries)
	}
	return st, nil
}

// buildTenants assembles the tenant registry from the keyfile and the
// anonymous-limit flags.
func buildTenants(keyfile string, anonQPS, anonBurst float64, anonInflight int) (*tenant.Registry, error) {
	var cfg tenant.Config
	if keyfile != "" {
		loaded, err := tenant.LoadKeyfile(keyfile)
		if err != nil {
			return nil, err
		}
		cfg = loaded
		log.Printf("loaded %d tenant keys from %s", len(cfg.Keys), keyfile)
	}
	// Flags override the keyfile's anonymous block only when set.
	if anonQPS != 0 {
		cfg.Anonymous.RateQPS = anonQPS
	}
	if anonBurst != 0 {
		cfg.Anonymous.Burst = anonBurst
	}
	if anonInflight != 0 {
		cfg.Anonymous.MaxInFlight = anonInflight
	}
	return tenant.NewRegistry(cfg)
}

// serve listens (logging the bound address, so -addr :0 is usable in
// scripts), serves until SIGINT/SIGTERM, then drains: closeFn stops
// intake and flushes what the handler owns before the HTTP shutdown.
func serve(addr string, handler http.Handler, banner string, closeFn func()) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("prunesimd listening on %s (%s)", ln.Addr(), banner)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		log.Printf("shutting down: draining in-flight work")
		// Close the service first: it stops intake (new submissions get
		// 503), releases SSE streams, drains the workers and flushes the
		// store — so the HTTP shutdown below returns as soon as work is
		// done instead of waiting out its timeout behind a connected
		// events subscriber.
		closeFn()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prunesimd:", err)
	os.Exit(1)
}
