// Command prunesimd is the prunesim serving daemon: an HTTP/JSON service
// that accepts scenario submissions, runs them asynchronously through the
// shared sweep engine on a bounded queue + worker pool, caches outcomes by
// canonical scenario content hash, and streams live per-trial progress.
//
//	prunesimd                          # listen on :8080
//	prunesimd -addr :9000 -workers 4   # bounded worker pool
//	prunesimd -scenarios ./my-lib      # extra scenario files on top of the
//	                                   # embedded examples/scenarios library
//
// Endpoints (see DESIGN.md and README.md for curl examples):
//
//	POST /v1/jobs                 submit {"scenario": {...}} or {"name": "..."}
//	GET  /v1/jobs                 list jobs
//	GET  /v1/jobs/{id}            status + outcome
//	GET  /v1/jobs/{id}/events     SSE per-trial progress + periodic timeline
//	GET  /v1/jobs/{id}/timeline   live in-flight aggregate (binned rates,
//	                              robustness-so-far, duration quantiles)
//	GET  /v1/jobs/{id}/trials.csv per-trial CSV artifact
//	GET  /v1/scenarios            the scenario library
//	GET  /healthz                 liveness
//	GET  /metrics                 Prometheus text metrics + latency histograms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	scenarios "prunesim/examples/scenarios"
	"prunesim/internal/cli"
	"prunesim/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		queue       = flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		parallelism = flag.Int("parallelism", 0, "max concurrent trials per job (0 = per-scenario setting)")
		extraDir    = flag.String("scenarios", "", "directory of extra scenario *.json files to add to the library")
	)
	flag.Parse()

	library, err := scenarios.Library()
	if err != nil {
		fatal(err)
	}
	if *extraDir != "" {
		extra, err := cli.LoadScenarioDir(*extraDir)
		if err != nil {
			fatal(err)
		}
		log.Printf("loaded %d extra scenarios from %s", len(extra), *extraDir)
		library = append(library, extra...)
	}

	srv := service.New(service.Config{
		QueueCapacity: *queue,
		Workers:       *workers,
		Parallelism:   *parallelism,
		Library:       library,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(srv.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let
	// in-flight jobs finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("prunesimd listening on %s (%d library scenarios, queue %d, workers %d)",
		*addr, len(library), *queue, *workers)

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
		log.Printf("shutting down: draining in-flight jobs")
		// Close the service first: it stops intake (new submissions get
		// 503), releases SSE streams and drains the workers — so the HTTP
		// shutdown below returns as soon as work is done instead of
		// waiting out its timeout behind a connected events subscriber.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prunesimd:", err)
	os.Exit(1)
}
