package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildDaemon compiles the prunesimd binary once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "prunesimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building prunesimd: %v\n%s", err, out)
	}
	return bin
}

// daemon is one running prunesimd process under test.
type daemon struct {
	cmd  *exec.Cmd
	addr string // http://host:port
	logs *bytes.Buffer
}

// startDaemon launches the binary on a kernel-assigned port and waits for
// the logged listen address.
func startDaemon(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, logs: &bytes.Buffer{}}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The daemon logs "prunesimd listening on 127.0.0.1:PORT (...)" after
	// binding; scrape the real port from the stream, then keep draining it.
	addrRe := regexp.MustCompile(`listening on (\S+)`)
	addrCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stderr)
		for scanner.Scan() {
			line := scanner.Text()
			d.logs.WriteString(line + "\n")
			if m := addrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.addr = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never logged its listen address:\n%s", d.logs.String())
	}
	return d
}

// stop SIGTERMs the daemon and waits for a clean exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit within 30s of SIGTERM:\n%s", d.logs.String())
	}
}

// submitByName POSTs a library scenario and returns the decoded body.
func submitByName(t *testing.T, addr, name string) map[string]any {
	t.Helper()
	resp, err := http.Post(addr+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"name": %q}`, name)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		t.Fatalf("submit %s: status %d: %s", name, resp.StatusCode, raw)
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("decoding submit response: %v\n%s", err, raw)
	}
	return body
}

// waitState polls a job until it reaches state "done" (failing on
// "failed").
func waitState(t *testing.T, addr, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(addr + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch body["state"] {
		case "done":
			return body
		case "failed":
			t.Fatalf("job %s failed: %v", id, body["error"])
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

// fetchCSV downloads a job's trials.csv.
func fetchCSV(t *testing.T, addr, id string) []byte {
	t.Helper()
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/trials.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trials.csv: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestSigtermDurability is the shutdown-and-restart acceptance e2e: run a
// scenario on a disk-backed daemon, SIGTERM it while another job is still
// in flight, and assert (a) the data directory holds no partially-written
// cache file — every *.json parses, no *.tmp survives — and (b) a
// restarted daemon answers the finished scenario from the cache with a
// byte-identical trials.csv.
func TestSigtermDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	dataDir := t.TempDir()

	// First life: finish one scenario, leave another in flight, SIGTERM.
	d1 := startDaemon(t, bin, "-store=disk", "-data-dir", dataDir, "-workers", "2")
	first := submitByName(t, d1.addr, "service_smoke")
	waitState(t, d1.addr, first["id"].(string))
	csvBefore := fetchCSV(t, d1.addr, first["id"].(string))
	// The in-flight job at SIGTERM: the drain lets it finish and commit
	// its Put before the store closes.
	second := submitByName(t, d1.addr, "poisson_baseline")
	d1.stop(t)

	entries, err := filepath.Glob(filepath.Join(dataDir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	jsonCount := 0
	for _, path := range entries {
		if fi, err := os.Stat(path); err == nil && fi.IsDir() {
			continue
		}
		if strings.HasSuffix(path, ".tmp") {
			t.Fatalf("partially-written cache file survived SIGTERM: %s", path)
		}
		if !strings.HasSuffix(path, ".json") {
			t.Fatalf("unexpected file in data dir: %s", path)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var v map[string]any
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("cache entry %s does not parse after SIGTERM: %v", path, err)
		}
		jsonCount++
	}
	if jsonCount < 1 {
		t.Fatalf("no cache entries in %s after a finished job", dataDir)
	}
	_ = second

	// Second life: the finished scenario must be a cache hit with the
	// exact same artifact bytes.
	d2 := startDaemon(t, bin, "-store=disk", "-data-dir", dataDir, "-workers", "2")
	resub := submitByName(t, d2.addr, "service_smoke")
	if hit, _ := resub["cache_hit"].(bool); !hit {
		t.Fatalf("restarted daemon missed the cache: %v", resub)
	}
	csvAfter := fetchCSV(t, d2.addr, resub["id"].(string))
	if !bytes.Equal(csvBefore, csvAfter) {
		t.Fatalf("trials.csv changed across restart: %d bytes vs %d bytes", len(csvBefore), len(csvAfter))
	}
	d2.stop(t)
}

// TestFrontDoorTopology boots the README quickstart: two disk-backed
// shard daemons plus a front door, then proves submissions route by hash,
// resubmissions hit the owning shard's cache, and both shards appear in
// the merged listing and the front door's health.
func TestFrontDoorTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := buildDaemon(t)
	s0 := startDaemon(t, bin, "-shard-of", "0/2", "-store=disk", "-data-dir", t.TempDir(), "-workers", "2")
	s1 := startDaemon(t, bin, "-shard-of", "1/2", "-store=disk", "-data-dir", t.TempDir(), "-workers", "2")
	door := startDaemon(t, bin, "-route-to", s0.addr+","+s1.addr)

	st := submitByName(t, door.addr, "service_smoke")
	id := st["id"].(string)
	if !strings.HasPrefix(id, "s0-") && !strings.HasPrefix(id, "s1-") {
		t.Fatalf("front-door job ID %q carries no shard prefix", id)
	}
	waitState(t, door.addr, id)

	resub := submitByName(t, door.addr, "service_smoke")
	if hit, _ := resub["cache_hit"].(bool); !hit {
		t.Fatalf("resubmission through front door missed the owning shard's cache: %v", resub)
	}

	resp, err := http.Get(door.addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Mode   string `json:"mode"`
		Shards []struct {
			OK bool `json:"ok"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Mode != "front-door" || len(health.Shards) != 2 {
		t.Fatalf("front-door health: %+v", health)
	}

	door.stop(t)
	s0.stop(t)
	s1.stop(t)
}
