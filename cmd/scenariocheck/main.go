// Command scenariocheck loads and validates every scenario JSON file under
// the given directories (default examples/scenarios). It is the CI
// `scenarios-validate` gate: schema drift — a renamed field, a new
// validation rule, an example left behind by an arrival-model change —
// fails the build at PR time instead of surfacing when a user loads the
// file.
//
// Usage:
//
//	scenariocheck [DIR...]
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"prunesim"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{"examples/scenarios"}
	}
	var paths []string
	for _, dir := range dirs {
		matches, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil {
			fatal(err)
		}
		paths = append(paths, matches...)
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("no scenario files under %v", dirs))
	}
	sort.Strings(paths)
	failed := 0
	for _, path := range paths {
		sc, err := prunesim.LoadScenario(path)
		if err != nil {
			failed++
			fmt.Printf("FAIL  %-40s %v\n", filepath.Base(path), err)
			continue
		}
		pattern := sc.Workload.Pattern
		fmt.Printf("ok    %-40s pattern=%-9s tasks=%-6d heuristic=%-8s trials=%-3d events=%d\n",
			filepath.Base(path), pattern, sc.Workload.Tasks, sc.Platform.Heuristic, sc.Run.Trials, len(sc.Events))
	}
	fmt.Printf("%d scenario(s), %d invalid\n", len(paths), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scenariocheck:", err)
	os.Exit(1)
}
