// Command experiments regenerates the paper's evaluation figures and prints
// the data series in paper-style rows (mean robustness ± 95% CI over N
// trials). It can also run declarative scenario files through the same
// sweep engine.
//
// Usage:
//
//	experiments -fig all                 # every figure at paper scale (slow)
//	experiments -fig 9b -trials 10       # one figure, fewer trials
//	experiments -fig 8 -scale 0.2        # 20%-size workloads, same shape
//	experiments -fig 6 -csv fig6.csv     # dump curve data as CSV
//	experiments -fig 9b -md fig9b.md     # Markdown table (EXPERIMENTS.md style)
//	experiments -scenario examples/scenarios/bursty_arrivals.json
//	experiments -scenario a.json -scenario b.json -out outcomes.json
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"prunesim"
	"prunesim/internal/cli"
	"prunesim/internal/experiments"
)

// pathList accumulates repeated -scenario flags.
type pathList []string

func (p *pathList) String() string     { return strings.Join(*p, ",") }
func (p *pathList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var scenarios pathList
	var (
		fig      = flag.String("fig", "all", "figure to regenerate ("+strings.Join(prunesim.FigureNames(), ", ")+" or 'all')")
		trials   = flag.Int("trials", 30, "workload trials per configuration point")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1 = paper size)")
		seed     = flag.Uint64("seed", 0x10bd, "base random seed")
		parallel = flag.Int("parallelism", 0, "max concurrent trials (0 = GOMAXPROCS)")
		csvPath  = flag.String("csv", "", "also write rows/points to this CSV file")
		mdPath   = flag.String("md", "", "also write Markdown tables to this file")
		outPath  = flag.String("out", "", "write scenario outcomes as JSON (scenario mode)")
	)
	flag.Var(&scenarios, "scenario", "run this scenario file instead of a figure (repeatable)")
	flag.Parse()

	if len(scenarios) > 0 {
		for _, name := range []string{"fig", "csv", "md"} {
			if flagSet(name) {
				fatal(fmt.Errorf("-%s does not apply in scenario mode (use -out for JSON outcomes)", name))
			}
		}
		runScenarios(scenarios, overrides{
			trials: *trials, scale: *scale, seed: *seed, parallel: *parallel, out: *outPath,
		})
		return
	}
	if *outPath != "" {
		fatal(fmt.Errorf("-out applies only in scenario mode (use -csv or -md for figures)"))
	}

	opt := prunesim.FigureOptions{Trials: *trials, Scale: *scale, Seed: *seed, Parallelism: *parallel}
	names := []string{*fig}
	if *fig == "all" {
		names = prunesim.FigureNames()
	}
	var csvW *csv.Writer
	if *csvPath != "" {
		// "-" streams to stdout; parent directories are created on demand.
		f, err := cli.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		csvW = csv.NewWriter(f)
		defer csvW.Flush()
		if err := experiments.WriteCSVHeader(csvW); err != nil {
			fatal(err)
		}
	}
	var mdW io.Writer
	if *mdPath != "" {
		f, err := cli.Create(*mdPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		mdW = f
	}
	for _, name := range names {
		start := time.Now()
		fr, err := prunesim.RunFigure(name, opt)
		if err != nil {
			fatal(err)
		}
		printFigure(fr, time.Since(start))
		if csvW != nil {
			if err := experiments.WriteCSV(csvW, fr); err != nil {
				fatal(err)
			}
		}
		if mdW != nil {
			if err := experiments.WriteMarkdown(mdW, fr); err != nil {
				fatal(err)
			}
			fmt.Fprintln(mdW)
		}
	}
}

// overrides carries the scenario-mode flag overrides; each applies only
// when its flag was given explicitly on the command line.
type overrides struct {
	trials   int
	scale    float64
	seed     uint64
	parallel int
	out      string
}

// runScenarios executes scenario files through one shared engine and prints
// each outcome.
func runScenarios(paths []string, o overrides) {
	eng := prunesim.NewScenarioEngine(o.parallel)
	var outcomes []*prunesim.ScenarioOutcome
	for _, path := range paths {
		sc, err := prunesim.LoadScenario(path)
		if err != nil {
			fatal(err)
		}
		if flagSet("trials") {
			sc.Run.Trials = o.trials
		}
		if flagSet("scale") {
			sc.Run.Scale = o.scale
		}
		if flagSet("seed") {
			sc.Run.Seed = o.seed
		}
		start := time.Now()
		outcome, err := eng.Run(sc)
		if err != nil {
			fatal(err)
		}
		sc = outcome.Scenario
		fmt.Printf("\n=== Scenario %s (%s) ===\n", sc.Name, time.Since(start).Round(time.Millisecond))
		if sc.Description != "" {
			fmt.Printf("%s\n", sc.Description)
		}
		fmt.Printf("  %-10s %6.2f%% ± %5.2f over %d trials",
			sc.Platform.Heuristic, outcome.Robustness.Mean, outcome.Robustness.CI95, outcome.Robustness.N)
		if sc.Workload.ValueHi > 0 {
			fmt.Printf("   weighted=%.2f%%±%.2f", outcome.WeightedRobustness.Mean, outcome.WeightedRobustness.CI95)
		}
		fmt.Println()
		outcomes = append(outcomes, outcome)
	}
	if o.out != "" {
		// "-" streams to stdout; parent directories are created on demand.
		if err := cli.WriteJSON(o.out, outcomes); err != nil {
			fatal(err)
		}
		if o.out != "-" {
			fmt.Printf("wrote %s\n", o.out)
		}
	}
}

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func printFigure(fr *prunesim.FigureResult, elapsed time.Duration) {
	fmt.Printf("\n=== Figure %s: %s (%s) ===\n", fr.Name, fr.Title, elapsed.Round(time.Millisecond))
	fmt.Printf("paper shape: %s\n", fr.Expectation)
	if len(fr.Points) > 0 {
		fmt.Printf("%d curve points (use -csv to export); preview:\n", len(fr.Points))
		step := len(fr.Points) / 10
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(fr.Points); i += step {
			p := fr.Points[i]
			fmt.Printf("  t=%8.1f  rate=%6.3f\n", p.X, p.Y)
		}
		return
	}
	// Group rows by X for a paper-like table: one block per x value.
	seenX := []string{}
	byX := map[string][]prunesim.FigureRow{}
	for _, r := range fr.Rows {
		if _, ok := byX[r.X]; !ok {
			seenX = append(seenX, r.X)
		}
		byX[r.X] = append(byX[r.X], r)
	}
	for _, x := range seenX {
		fmt.Printf("  %s:\n", x)
		for _, r := range byX[x] {
			fmt.Printf("    %-10s %6.2f%% ± %5.2f", r.Series, r.Robustness.Mean, r.Robustness.CI95)
			for k, v := range r.Extra {
				fmt.Printf("   %s=%.2f±%.2f", k, v.Mean, v.CI95)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
