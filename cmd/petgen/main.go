// Command petgen exports the PET (Probabilistic Execution Time) matrix: the
// table of expected execution times, or the full PMF of one cell, or a
// generated workload trial — the inputs a downstream analysis pipeline
// needs.
//
// Usage:
//
//	petgen                      # mean execution-time table (CSV to stdout)
//	petgen -cell gzip:sunfire-3800   # full PMF of one (task, machine) cell
//	petgen -workload 15000 -trial 3  # dump one workload trial as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prunesim"
	"prunesim/internal/trace"
)

func main() {
	var (
		cell    = flag.String("cell", "", "export one cell's PMF, as taskType:machineType (names or indices)")
		homog   = flag.Bool("homogeneous", false, "use the homogeneous matrix")
		wl      = flag.Int("workload", 0, "generate a workload of this many tasks instead")
		trial   = flag.Int("trial", 0, "workload trial number")
		pattern = flag.String("pattern", "spiky", "workload pattern: spiky or constant")
	)
	flag.Parse()

	matrix := prunesim.StandardPET()
	if *homog {
		matrix = prunesim.HomogeneousPET()
	}
	switch {
	case *wl > 0:
		cfg := prunesim.DefaultWorkload(*wl)
		cfg.Trial = *trial
		cfg.Model = *pattern
		tasks, err := prunesim.GenerateWorkload(matrix, cfg)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteTasks(os.Stdout, tasks); err != nil {
			fatal(err)
		}
	case *cell != "":
		tt, mt, err := parseCell(matrix, *cell)
		if err != nil {
			fatal(err)
		}
		if err := trace.WritePETPMF(os.Stdout, matrix, tt, mt); err != nil {
			fatal(err)
		}
	default:
		if err := trace.WritePETMeans(os.Stdout, matrix); err != nil {
			fatal(err)
		}
	}
}

// parseCell resolves "gzip:sunfire-3800" or "0:6" to matrix indices.
func parseCell(m *prunesim.PETMatrix, s string) (tt, mt int, err error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("cell must be taskType:machineType, got %q", s)
	}
	tt = -1
	for i := 0; i < m.NumTaskTypes(); i++ {
		if m.TaskTypeName(i) == parts[0] {
			tt = i
		}
	}
	if tt < 0 {
		if _, err := fmt.Sscanf(parts[0], "%d", &tt); err != nil {
			return 0, 0, fmt.Errorf("unknown task type %q", parts[0])
		}
	}
	mt = -1
	for j := 0; j < m.NumMachineTypes(); j++ {
		if m.MachineTypeName(j) == parts[1] {
			mt = j
		}
	}
	if mt < 0 {
		if _, err := fmt.Sscanf(parts[1], "%d", &mt); err != nil {
			return 0, 0, fmt.Errorf("unknown machine type %q", parts[1])
		}
	}
	if tt < 0 || tt >= m.NumTaskTypes() || mt < 0 || mt >= m.NumMachineTypes() {
		return 0, 0, fmt.Errorf("cell (%d,%d) out of range", tt, mt)
	}
	return tt, mt, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "petgen:", err)
	os.Exit(1)
}
